#!/usr/bin/env python
"""Network monitoring: heavy hitters and port-scan-ish anomalies.

The paper's second motivating application (§1): real-time processing of
packet streams for "detecting malicious activities".  We synthesize a
flow stream (source-IP keys) with

* normal zipfian traffic,
* a volumetric attacker that suddenly dominates the stream (detected as
  a *new entrant to the top-k*), and
* interval/discrete queries (§3.2 Query 3) posed every 10k packets.

Three different counter-based algorithms watch the same stream side by
side, illustrating the shared FrequencyCounter protocol.

    python examples/network_monitoring.py
"""

from repro.core import (
    IntervalSchedule,
    LossyCounting,
    MisraGries,
    SpaceSaving,
    TopKSetQuery,
    answer,
)
from repro.workloads import interleave, uniform_stream, zipf_stream


def build_traffic(seed: int = 3):
    """Normal traffic with an attack burst in the middle third."""
    normal_a = zipf_stream(40_000, 50_000, 1.3, seed=seed)
    normal_b = zipf_stream(40_000, 50_000, 1.3, seed=seed + 1)
    attacker = 999_999  # an address outside the normal alphabet
    attack = [attacker if i % 3 else flow for i, flow in enumerate(
        uniform_stream(20_000, 50_000, seed=seed + 2)
    )]
    return normal_a + interleave([attack, normal_b[:20_000]]) + normal_b[20_000:], attacker


def main() -> None:
    stream, attacker = build_traffic()
    counter = SpaceSaving(capacity=500)
    schedule = IntervalSchedule((TopKSetQuery(k=10),), every_updates=10_000)

    print(f"monitoring {len(stream)} packets, top-10 every 10k packets\n")
    baseline_top = None
    for position in range(0, len(stream), 10_000):
        window = stream[position : position + 10_000]
        counter.process_many(window)
        top = [entry.element for entry in answer(TopKSetQuery(k=10), counter)]
        if baseline_top is None:
            baseline_top = set(top)
        newcomers = set(top) - baseline_top
        marker = ""
        if attacker in newcomers:
            marker = "  <-- ALERT: new heavy hitter (possible DoS source)"
        print(f"after {position + len(window):>6} packets: "
              f"top-1={top[0]}{marker}")
        baseline_top |= set(top)

    print("\nattacker estimated volume:",
          counter.estimate(attacker), "packets")
    assert attacker in {e.element for e in counter.top_k(5)}

    # --- same question to two other counter-based algorithms -----------
    print("\ncross-checking with other counter-based algorithms:")
    for name, algo in [
        ("Lossy Counting", LossyCounting(epsilon=0.001)),
        ("Misra-Gries   ", MisraGries(k=500)),
    ]:
        algo.process_many(stream)
        top5 = [entry.element for entry in algo.top_k(5)]
        found = "found" if attacker in top5 else "MISSED"
        print(f"  {name}: attacker {found} in top-5 "
              f"(estimate {algo.estimate(attacker)})")


if __name__ == "__main__":
    main()
