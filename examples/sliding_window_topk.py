#!/usr/bin/env python
"""Top-k over a sliding window — trending topics on a drifting stream.

The paper's operators summarize the whole stream; production click
analytics usually wants "what's hot *right now*".  This example drives
:class:`~repro.core.windowed.WindowedSpaceSaving` (the jumping-window
extension built on the mergeability of Space Saving summaries) over a
stream whose hot set rotates, and shows the window forgetting old trends
while whole-stream Space Saving cannot.

    python examples/sliding_window_topk.py
"""

from repro.core import SpaceSaving, WindowedSpaceSaving
from repro.workloads import bursty_stream


def main() -> None:
    window_size = 10_000
    stream = bursty_stream(
        length=60_000,
        alphabet=50_000,
        burst_length=15_000,   # a new trend roughly every 1.5 windows
        hot_fraction=0.6,
        seed=11,
    )

    windowed = WindowedSpaceSaving(
        window_size=window_size, capacity=200, panes=10
    )
    whole_stream = SpaceSaving(capacity=200)

    print(f"{'elements':>9s}  {'window top-3':28s}  whole-stream top-3")
    for start in range(0, len(stream), window_size):
        chunk = stream[start : start + window_size]
        windowed.process_many(chunk)
        whole_stream.process_many(chunk)
        in_window = [entry.element for entry in windowed.top_k(3)]
        overall = [entry.element for entry in whole_stream.top_k(3)]
        print(f"{start + len(chunk):>9d}  {str(in_window):28s}  {overall}")

    print(
        "\nthe window's leader flips as each burst ends, while the "
        "whole-stream\nsummary stays anchored to the all-time heaviest "
        "hitters."
    )
    # the current window no longer remembers the first burst's hot element
    first_burst_hot = max(
        set(stream[:15_000]), key=stream[:15_000].count
    )
    print(f"first burst's hot element {first_burst_hot}: "
          f"window estimate {windowed.estimate(first_burst_hot)}, "
          f"whole-stream estimate {whole_stream.estimate(first_burst_hot)}")


if __name__ == "__main__":
    main()
