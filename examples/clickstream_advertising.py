#!/usr/bin/env python
"""Internet-advertising analytics — the paper's §1 motivating scenario.

A *publisher* renders advertisements (impressions) and observes clicks.
We synthesize both streams, then answer the accounting questions the
introduction describes:

* estimated impressions and clicks per advertisement (frequency counting),
* click-through rate (CTR) for the busiest ads,
* "ads clicked more than 0.1% of all clicks" (frequent-elements query),
* "top-25 most clicked ads" (top-k query),
* a simple fraud check: ads whose CTR is implausibly high, the kind of
  signal an advertising commissioner watches for.

    python examples/clickstream_advertising.py
"""

from repro.core import ExactCounter, SpaceSaving
from repro.workloads import weighted_stream, zipf_weights


def main() -> None:
    ads = 20_000
    impressions_n = 200_000
    seed = 7

    # Impressions follow a zipfian popularity (big campaigns buy more
    # slots); clicks follow the impression distribution scaled by a
    # per-ad appeal factor, plus one "fraudulent" ad whose operator
    # clicks its own banner.
    impression_weights = zipf_weights(ads, 1.4)
    appeal = [((ad * 2654435761) % 97) / 97 * 0.1 + 0.01 for ad in range(ads)]
    click_weights = impression_weights * appeal
    # a mid-popularity ad whose operator auto-clicks its own banner: its
    # click volume rockets into the top ranks while impressions stay modest
    fraud_ad = 60
    click_weights[fraud_ad] *= 400

    impressions = weighted_stream(impressions_n, impression_weights, seed=seed)
    clicks = weighted_stream(impressions_n // 10, click_weights, seed=seed + 1)

    # One Space Saving instance per stream: 1000 counters = 0.1% error.
    impression_counter = SpaceSaving(capacity=1000)
    impression_counter.process_many(impressions)
    click_counter = SpaceSaving(capacity=1000)
    click_counter.process_many(clicks)

    print(f"processed {impression_counter.processed} impressions and "
          f"{click_counter.processed} clicks over {ads} ads\n")

    # --- top-25 most clicked ads (Query 2, top-k) ------------------------
    top = click_counter.top_k(25)
    print("top-25 most clicked ads (first 5 shown):")
    for entry in top[:5]:
        print(f"  ad {entry.element}: ~{entry.count} clicks")

    # --- ads above 0.1% of all clicks (Query 2, frequent elements) ------
    frequent = click_counter.frequent(0.001)
    print(f"\n{len(frequent)} ads exceed 0.1% of all clicks")

    # --- CTR estimation and fraud detection -----------------------------
    print("\nCTR screening over the most-clicked ads:")
    flagged = []
    for entry in top:
        shown = impression_counter.estimate(entry.element)
        if shown == 0:
            continue
        ctr = entry.count / shown
        if ctr > 0.5:  # a 50% click-through rate is not a thing
            flagged.append((entry.element, ctr))
    for ad, ctr in flagged:
        print(f"  SUSPICIOUS ad {ad}: estimated CTR {ctr:.0%}")
    assert any(ad == fraud_ad for ad, _ in flagged), "fraud ad missed!"

    # --- sanity: compare against exact counting -------------------------
    exact_clicks = ExactCounter()
    exact_clicks.process_many(clicks)
    exact_top = [ad for ad, _ in exact_clicks.top_k(10)]
    approx_top = [entry.element for entry in click_counter.top_k(10)]
    overlap = len(set(exact_top) & set(approx_top))
    print(f"\ntop-10 overlap with exact counting: {overlap}/10")


if __name__ == "__main__":
    main()
