"""Run-report rendering, the schema catalogue and the report CLI."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs import (
    METRIC_SPECS,
    MetricsRegistry,
    iter_entry_metrics,
    lookup,
    render_report,
    report_json,
    select_entries,
)


def _sample_snapshot():
    registry = MetricsRegistry()
    registry.counter("core.spacesaving.increments").inc(10)
    registry.gauge("sim.seconds").set(0.5)
    registry.histogram("cots.queue.depth", buckets=(1, 2)).observe(1)
    return registry.snapshot()


def _sample_report():
    return {
        "suite": "core",
        "scale": "tiny",
        "results": [
            {"name": "alpha", "metrics": _sample_snapshot()},
            {"name": "beta"},
        ],
    }


# ----------------------------------------------------------------------
# schema catalogue
# ----------------------------------------------------------------------
def test_lookup_exact_and_templated():
    assert lookup("core.spacesaving.increments").unit == "ops"
    assert lookup("mp.worker.3.items").name == "mp.worker.<i>.items"
    assert lookup("sim.busy_cycles.hash").layer == "sim"
    assert lookup("cots.stats.delegations").kind == "counter"
    assert lookup("no.such.metric") is None


def test_spec_names_follow_layer_dot_convention():
    for name, spec in METRIC_SPECS.items():
        assert name == spec.name
        assert name.count(".") >= 1
        assert spec.kind in ("counter", "gauge", "histogram")
        assert spec.layer in (
            "core", "cots", "mp", "backend", "sketch", "scenario", "serve",
            "sim", "bench"
        )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def test_iter_entry_metrics_bench_report():
    pairs = iter_entry_metrics(_sample_report())
    assert [name for name, _ in pairs] == ["alpha", "beta"]
    assert pairs[1][1] == {}


def test_iter_entry_metrics_single_run_document():
    pairs = iter_entry_metrics({"metrics": _sample_snapshot()})
    assert len(pairs) == 1 and pairs[0][0] == "run"


def test_iter_entry_metrics_rejects_non_reports():
    with pytest.raises(ConfigurationError):
        iter_entry_metrics({"something": "else"})


def test_render_report_mentions_every_entry_and_annotates():
    text = render_report(_sample_report(), source="x.json")
    assert "entry alpha" in text and "entry beta" in text
    assert "core.spacesaving.increments" in text
    assert "ops" in text              # unit from the catalogue
    assert "(no metrics recorded)" in text
    assert "x.json" in text


def test_report_json_round_trips_snapshots():
    report = _sample_report()
    machine = report_json(report)
    assert machine["schema_version"] == 1
    assert machine["entries"][0]["metrics"] == report["results"][0]["metrics"]
    # JSON-serializable end to end
    assert json.loads(json.dumps(machine)) == machine


def test_select_entries_filters_by_substring():
    filtered = select_entries(_sample_report(), "alp")
    assert [e["name"] for e in filtered["results"]] == ["alpha"]
    # no filter: untouched
    report = _sample_report()
    assert select_entries(report, None) is report


def test_select_entries_unknown_name_lists_known():
    with pytest.raises(ConfigurationError, match="alpha"):
        select_entries(_sample_report(), "nope")


# ----------------------------------------------------------------------
# the CLI command
# ----------------------------------------------------------------------
@pytest.fixture
def report_file(tmp_path):
    path = tmp_path / "BENCH_core.json"
    path.write_text(json.dumps(_sample_report()))
    return path


def test_cli_report_table(report_file, capsys):
    assert main(["report", str(report_file)]) == 0
    out = capsys.readouterr().out
    assert "entry alpha" in out
    assert "core.spacesaving.increments" in out


def test_cli_report_json_round_trips(report_file, capsys):
    assert main(["report", str(report_file), "--json"]) == 0
    machine = json.loads(capsys.readouterr().out)
    assert machine["entries"][0]["metrics"] == _sample_snapshot()


def test_cli_report_entry_filter(report_file, capsys):
    assert main(["report", str(report_file), "--entry", "beta"]) == 0
    out = capsys.readouterr().out
    assert "entry beta" in out and "entry alpha" not in out


def test_cli_report_missing_file(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope.json")]) == 2
    assert "no report" in capsys.readouterr().err


def test_cli_report_bad_filter(report_file, capsys):
    assert main(["report", str(report_file), "--entry", "zzz"]) == 2
    assert "report:" in capsys.readouterr().err
