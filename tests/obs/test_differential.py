"""Metrics are observation-only: enabling them never changes results.

Every instrumented layer is run twice on the same seeded stream — once
with a registry, once without — and the *algorithmic* outputs must be
identical.  This is the contract that lets instrumentation live in hot
paths permanently.
"""

import pytest

from repro.core.space_saving import SpaceSaving
from repro.cots import CoTSRunConfig, run_cots
from repro.obs import MetricsRegistry
from repro.parallel import SchemeConfig, run_sequential
from repro.workloads import zipf_stream


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(5_000, 600, 1.5, seed=11)


def _triples(counter):
    return [(e.element, e.count, e.error) for e in counter.entries()]


# ----------------------------------------------------------------------
# raw SpaceSaving
# ----------------------------------------------------------------------
@pytest.mark.parametrize("lane", ["per_element", "batched"])
def test_space_saving_metrics_do_not_change_counts(stream, lane):
    plain = SpaceSaving(capacity=64)
    registry = MetricsRegistry()
    instrumented = SpaceSaving(capacity=64, metrics=registry)
    for counter in (plain, instrumented):
        if lane == "batched":
            counter.process_many(stream)
        else:
            for element in stream:
                counter.process(element)
    assert _triples(plain) == _triples(instrumented)
    assert plain.processed == instrumented.processed
    # ... and the metrics themselves reconcile with the run
    counters = registry.snapshot()["counters"]
    assert counters["core.spacesaving.occurrences"] == len(stream)
    assert (
        counters["core.spacesaving.increments"] > 0
        and counters["core.spacesaving.inserts"] == 64
        and counters["core.spacesaving.overwrites"] > 0
    )


def test_space_saving_lanes_agree_on_metrics_invariants(stream):
    # inserts + overwrites == distinct summary slots filled, in any lane
    registry = MetricsRegistry()
    counter = SpaceSaving(capacity=64, metrics=registry)
    counter.process_many(stream)
    counters = registry.snapshot()["counters"]
    assert counters["core.spacesaving.inserts"] == len(counter.entries())


# ----------------------------------------------------------------------
# simulated drivers
# ----------------------------------------------------------------------
def test_run_sequential_metrics_identical(stream):
    base = run_sequential(stream, SchemeConfig(threads=1, capacity=64))
    registry = MetricsRegistry()
    inst = run_sequential(
        stream, SchemeConfig(threads=1, capacity=64, metrics=registry)
    )
    assert base.cycles == inst.cycles
    assert _triples(base.counter) == _triples(inst.counter)
    assert "metrics" in inst.extras
    assert "metrics" not in base.extras
    snap = inst.extras["metrics"]
    assert snap["counters"]["core.spacesaving.occurrences"] == len(stream)


def test_run_cots_metrics_identical(stream):
    base = run_cots(stream, CoTSRunConfig(threads=4, capacity=64))
    registry = MetricsRegistry()
    inst = run_cots(
        stream, CoTSRunConfig(threads=4, capacity=64, metrics=registry)
    )
    # deterministic simulation: same schedule, same cycles, same summary
    assert base.cycles == inst.cycles
    assert _triples(base.counter) == _triples(inst.counter)
    assert base.extras["stats"] == inst.extras["stats"]
    snap = inst.extras["metrics"]
    # the folded stats counters mirror the stats dict exactly
    for key, value in inst.extras["stats"].items():
        assert snap["counters"][f"cots.stats.{key}"] == value
    # the live queue-depth histogram saw every delegation delivery
    assert snap["histograms"]["cots.queue.depth"]["count"] > 0


# ----------------------------------------------------------------------
# the multiprocess backend
# ----------------------------------------------------------------------
def test_run_mp_metrics_identical():
    from repro.mp import MPConfig, run_mp

    stream = zipf_stream(4_000, 500, 1.2, seed=3)
    config = MPConfig(workers=2, capacity=64, chunk_elements=512)
    base = run_mp(stream, config)
    registry = MetricsRegistry()
    inst = run_mp(stream, config, metrics=registry)
    # hash routing + FIFO merge are deterministic: exact same summary
    assert _triples(base.counter) == _triples(inst.counter)
    assert base.counter.processed == inst.counter.processed
    snap = inst.extras["metrics"]
    assert snap["counters"]["mp.dispatched.items"] == len(stream)
    per_worker = sum(
        value
        for name, value in snap["counters"].items()
        if name.startswith("mp.worker.") and name.endswith(".items")
    )
    assert per_worker == len(stream)
    assert snap["histograms"]["mp.snapshot.seconds"]["count"] == 1
    assert snap["histograms"]["mp.merge.seconds"]["count"] == 1
    assert "metrics" not in base.extras
