"""Tracing is observation-only: enabling it never changes results.

The span-tracing mirror of ``test_differential.py``: every instrumented
layer runs twice on the same seeded stream — once tracing, once not —
and the algorithmic outputs must be identical.  For the simulated CoTS
run that includes the *makespan*: the tracer's clock reads
``engine.now`` from host code without yielding effects, so the schedule
itself must be bit-identical.
"""

import pytest

from repro.core.space_saving import SpaceSaving
from repro.cots import CoTSRunConfig, run_cots
from repro.obs import Span, Tracer
from repro.workloads import zipf_stream


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(5_000, 600, 1.5, seed=11)


def _triples(counter):
    return [(e.element, e.count, e.error) for e in counter.entries()]


# ----------------------------------------------------------------------
# raw SpaceSaving lanes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("lane", ["per_element", "batched"])
def test_space_saving_tracing_does_not_change_counts(stream, lane):
    plain = SpaceSaving(capacity=64)
    tracer = Tracer()
    traced = SpaceSaving(capacity=64, tracer=tracer)
    for counter in (plain, traced):
        if lane == "batched":
            counter.process_many(stream)
        else:
            counter.process_bulk(stream[0], 1)
            for element in stream[1:]:
                counter.process(element)
    assert _triples(plain) == _triples(traced)
    assert plain.processed == traced.processed
    # the lanes actually recorded spans while staying result-neutral
    if lane == "batched":
        names = {r.name for r in tracer.records()}
        assert names & {"lane.preaggregated", "lane.fused"}


def test_space_saving_lane_spans_account_for_the_stream(stream):
    tracer = Tracer()
    counter = SpaceSaving(capacity=64, tracer=tracer)
    counter.process_many(stream)
    total = sum(
        r.args["elements"]
        for r in tracer.records()
        if isinstance(r, Span) and r.name.startswith("lane.")
    )
    assert total == len(stream)


# ----------------------------------------------------------------------
# the simulated CoTS framework
# ----------------------------------------------------------------------
def test_cots_tracing_preserves_counts_and_makespan(stream):
    base = run_cots(stream, CoTSRunConfig(threads=4, capacity=64))
    tracer = Tracer()
    traced = run_cots(
        stream, CoTSRunConfig(threads=4, capacity=64, tracer=tracer)
    )
    # identical schedule: same cycles, same summary, same stats
    assert base.cycles == traced.cycles
    assert _triples(base.counter) == _triples(traced.counter)
    assert base.extras["stats"] == traced.extras["stats"]


def test_cots_trace_captures_the_delegation_protocol(stream):
    tracer = Tracer()
    result = run_cots(
        stream, CoTSRunConfig(threads=4, capacity=64, tracer=tracer)
    )
    records = tracer.records()
    cats = {r.cat for r in records}
    assert "cots.delegation" in cats        # CAS-failed handoffs
    assert "cots.bucket" in cats            # request-queue drains
    delegations = [r for r in records if r.cat == "cots.delegation"]
    assert len(delegations) == result.extras["stats"]["delegations"]
    # timestamps are simulated cycles: integral and within the makespan
    for record in records:
        stamp = record.start if isinstance(record, Span) else record.ts
        assert float(stamp).is_integer()
        assert 0 <= stamp <= result.cycles


def test_cots_scheduler_spans_annotate_thresholds():
    from repro.cots.scheduler import CoTSScheduler

    # tiny sigma forces parks; tiny rho forces wakes (see test_scheduler)
    stream = zipf_stream(3_000, 3_000, 3.0, seed=22)
    tracer = Tracer()
    scheduler = CoTSScheduler(sigma=1, rho=2, pool_size=2, min_active=2)
    run_cots(
        stream,
        CoTSRunConfig(threads=16, capacity=64, tracer=tracer),
        scheduler=scheduler,
    )
    records = tracer.records()
    parked = [r for r in records if r.name == "parked"]
    wakes = [r for r in records if r.name.startswith("wake.")]
    assert scheduler.parks > 0 and len(parked) > 0
    assert all(r.cat == "cots.scheduler" for r in parked + wakes)
    assert all("sigma" in r.args for r in parked)
    if scheduler.wakes:
        assert wakes and all(
            "rho" in r.args or "sigma" in r.args for r in wakes
        )


# ----------------------------------------------------------------------
# the multiprocess backend
# ----------------------------------------------------------------------
def test_mp_tracing_preserves_results_and_captures_both_sides():
    from repro.mp import MPConfig, run_mp

    stream = zipf_stream(4_000, 500, 1.2, seed=3)
    config = MPConfig(workers=2, capacity=64, chunk_elements=512)
    base = run_mp(stream, config)
    tracer = Tracer()
    traced = run_mp(stream, config, tracer=tracer)
    assert _triples(base.counter) == _triples(traced.counter)
    assert base.counter.processed == traced.counter.processed

    tracks = tracer.tracks()
    assert "driver" in tracks
    # worker spans came back with the snapshot replies, re-based and
    # namespaced per shard
    assert {"shard-0/worker", "shard-1/worker"} <= set(tracks)
    records = tracer.records()
    dispatch = [r for r in records if r.name == "dispatch"]
    assert sum(r.args["items"] for r in dispatch) == len(stream)
    worker_batches = [
        r for r in records
        if r.track.startswith("shard-") and r.name == "batch"
    ]
    assert sum(r.args["items"] for r in worker_batches) == len(stream)
    # re-based worker spans land inside the parent's timeline
    driver_spans = [r for r in records if r.track == "driver"]
    lo = min(r.start for r in driver_spans)
    hi = max(r.end for r in driver_spans)
    for span in worker_batches:
        assert lo <= span.start <= span.end <= hi
