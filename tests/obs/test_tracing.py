"""Unit tests for the span tracer: rings, drain order, aggregation."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import NULL_TRACER, Instant, NullTracer, Span, Tracer, coerce_tracer


def make_tracer(**kwargs):
    """A tracer on a deterministic manual clock."""
    state = {"t": 0.0}

    def clock():
        state["t"] += 1.0
        return state["t"]

    return Tracer(clock=clock, **kwargs), state


# ----------------------------------------------------------------------
# recording primitives
# ----------------------------------------------------------------------
def test_span_context_reads_clock_on_both_edges():
    tracer, _ = make_tracer()
    with tracer.span("w0", "work", "test"):
        pass
    (record,) = tracer.records()
    assert isinstance(record, Span)
    assert (record.start, record.end) == (1.0, 2.0)
    assert record.duration == 1.0


def test_instant_defaults_to_clock_and_accepts_explicit_ts():
    tracer, _ = make_tracer()
    tracer.instant("w0", "stamped", "test")
    tracer.instant("w0", "explicit", "test", ts=99.5)
    stamped, explicit = sorted(tracer.records(), key=lambda r: r.ts)
    assert stamped.ts == 1.0
    assert explicit.ts == 99.5


def test_len_and_tracks():
    tracer, _ = make_tracer()
    tracer.instant("b", "x", "t")
    tracer.add_span("a", "y", "t", 0.0, 1.0)
    assert len(tracer) == 2
    assert tracer.tracks() == ["a", "b"]


def test_use_clock_rebinds_the_time_source():
    tracer, _ = make_tracer()
    tracer.use_clock(lambda: 42.0)
    assert tracer.now() == 42.0


def test_invalid_ring_limit_rejected():
    with pytest.raises(ConfigurationError, match="limit_per_track"):
        Tracer(limit_per_track=0)


# ----------------------------------------------------------------------
# flight-recorder rings
# ----------------------------------------------------------------------
def test_ring_overflow_keeps_newest_and_counts_drops():
    tracer, _ = make_tracer(limit_per_track=4)
    for index in range(10):
        tracer.instant("w0", f"e{index}", "test")
    assert len(tracer) == 4
    assert tracer.dropped == 6
    assert tracer.truncated
    # the survivors are the most recent records, oldest-first
    assert [r.name for r in tracer.records()] == ["e6", "e7", "e8", "e9"]


def test_rings_are_per_track():
    tracer, _ = make_tracer(limit_per_track=2)
    for index in range(3):
        tracer.instant("a", f"a{index}", "test")
    tracer.instant("b", "b0", "test")
    assert tracer.dropped == 1          # only track a overflowed
    assert {r.name for r in tracer.records()} == {"a1", "a2", "b0"}


def test_no_overflow_means_not_truncated():
    tracer, _ = make_tracer()
    tracer.instant("w0", "e", "test")
    assert not tracer.truncated and tracer.dropped == 0


# ----------------------------------------------------------------------
# deterministic drain
# ----------------------------------------------------------------------
def test_records_sorted_by_timestamp_then_track():
    tracer, _ = make_tracer()
    tracer.add_span("z", "late", "t", 5.0, 6.0)
    tracer.add_span("a", "early", "t", 1.0, 9.0)
    tracer.instant("m", "tie-m", "t", ts=3.0)
    tracer.instant("b", "tie-b", "t", ts=3.0)
    names = [r.name for r in tracer.records()]
    assert names == ["early", "tie-b", "tie-m", "late"]


def test_records_is_non_destructive_drain_clears_but_keeps_drops():
    tracer, _ = make_tracer(limit_per_track=1)
    tracer.instant("w0", "a", "t")
    tracer.instant("w0", "b", "t")
    assert len(tracer.records()) == 1
    assert len(tracer.records()) == 1   # repeatable
    drained = tracer.drain()
    assert [r.name for r in drained] == ["b"]
    assert len(tracer) == 0
    assert tracer.dropped == 1          # drop count survives the drain
    assert tracer.truncated


def test_same_sequence_of_calls_drains_identically():
    def record(tracer):
        tracer.add_span("w1", "s", "t", 2.0, 3.0)
        tracer.instant("w0", "i", "t", ts=2.0)
        tracer.add_span("w0", "s2", "t", 1.0, 4.0)

    first, _ = make_tracer()
    second, _ = make_tracer()
    record(first)
    record(second)
    assert first.drain() == second.drain()


# ----------------------------------------------------------------------
# cross-process aggregation (serialize -> ingest)
# ----------------------------------------------------------------------
def test_serialize_ingest_round_trip_rebases_and_prefixes():
    child, _ = make_tracer()
    child.add_span("worker", "batch", "mp.worker", 1.0, 2.0, {"items": 7})
    child.instant("worker", "done", "mp.worker", ts=2.5)
    payload = child.serialize()

    parent, _ = make_tracer()
    assert parent.ingest(payload, offset=100.0, track_prefix="shard-3/") == 2
    span, instant = parent.records()
    assert isinstance(span, Span) and isinstance(instant, Instant)
    assert span.track == "shard-3/worker"
    assert (span.start, span.end) == (101.0, 102.0)
    assert span.args == {"items": 7}
    assert instant.ts == 102.5


def test_serialized_payload_is_plain_picklable_tuples():
    import pickle

    child, _ = make_tracer()
    child.add_span("w", "s", "c", 0.0, 1.0)
    payload = child.serialize()
    assert payload == pickle.loads(pickle.dumps(payload))
    assert all(isinstance(item, tuple) for item in payload)


def test_ingest_rejects_unknown_record_kind():
    tracer, _ = make_tracer()
    with pytest.raises(ConfigurationError, match="unknown trace record"):
        tracer.ingest([("bogus", "t", "n", "c", 0.0, None)])


# ----------------------------------------------------------------------
# the null tracer
# ----------------------------------------------------------------------
def test_null_tracer_is_disabled_and_records_nothing():
    assert NULL_TRACER.enabled is False
    assert Tracer.enabled is True
    NULL_TRACER.add_span("w", "s", "c", 0.0, 1.0)
    NULL_TRACER.instant("w", "i", "c")
    with NULL_TRACER.span("w", "s", "c"):
        pass
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.now() == 0.0
    assert NULL_TRACER.ingest([("span", "t", "n", "c", 0.0, 1.0, None)]) == 0


def test_null_tracer_span_context_is_shared():
    assert NULL_TRACER.span("a", "b", "c") is NULL_TRACER.span("x", "y", "z")


def test_coerce_tracer():
    assert coerce_tracer(None) is NULL_TRACER
    real = Tracer()
    assert coerce_tracer(real) is real
    assert isinstance(NULL_TRACER, NullTracer)
