"""The rolling-window delta math behind the live telemetry plane.

These pin the properties the serve watchdog depends on: counter resets
read as fresh increase (never negative), a counter first incremented
mid-window contributes its full rise, histogram quantiles interpolate
inside the right bucket, per-worker beacon snapshots merge into one
registry-shaped view, and the watchdog emits exactly one event per
firing/resolved transition.
"""

import pytest

from repro.errors import ConfigurationError
from repro.mp.worker import beacon_snapshot
from repro.obs.live import (
    ALERT_RULES,
    RollingWindow,
    Watchdog,
    counter_increase,
    histogram_increase,
    histogram_quantile,
    prometheus_series,
    render_prometheus,
)
from repro.obs.registry import TIME_BUCKETS, merge_snapshots


def _snap(counters=None, gauges=None, histograms=None):
    return {
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


# ----------------------------------------------------------------------
# counter_increase: Prometheus increase() semantics
# ----------------------------------------------------------------------
def test_counter_increase_monotone_series():
    assert counter_increase([0, 3, 10, 10, 12]) == 12.0


def test_counter_increase_reset_counts_new_value_as_fresh():
    # 0 -> 50, restart (reads 7), 7 -> 9: increase is 50 + 7 + 2
    assert counter_increase([0, 50, 7, 9]) == 59.0


def test_counter_increase_degenerate():
    assert counter_increase([]) == 0.0
    assert counter_increase([42]) == 0.0


# ----------------------------------------------------------------------
# histogram_increase: resets are detected on the whole histogram
# ----------------------------------------------------------------------
def test_histogram_increase_delta():
    older = {"buckets": [1.0, 2.0], "counts": [1, 0, 0], "count": 1,
             "sum": 0.5}
    newer = {"buckets": [1.0, 2.0], "counts": [3, 2, 1], "count": 6,
             "sum": 7.5}
    delta = histogram_increase(older, newer)
    assert delta["counts"] == [2, 2, 1]
    assert delta["count"] == 5
    assert delta["sum"] == pytest.approx(7.0)


def test_histogram_increase_reset_returns_newer_as_is():
    older = {"buckets": [1.0], "counts": [5, 0], "count": 5, "sum": 2.0}
    newer = {"buckets": [1.0], "counts": [2, 0], "count": 2, "sum": 0.5}
    delta = histogram_increase(older, newer)
    assert delta["counts"] == [2, 0]
    assert delta["count"] == 2


# ----------------------------------------------------------------------
# histogram_quantile: interpolation and edge cases
# ----------------------------------------------------------------------
def test_quantile_interpolates_linearly_within_bucket():
    # 10 observations all in (1.0, 2.0]: p50 sits mid-bucket
    value = histogram_quantile(0.5, (1.0, 2.0), [0, 10, 0])
    assert value == pytest.approx(1.5)


def test_quantile_first_bucket_lower_edge_is_zero():
    value = histogram_quantile(0.5, (2.0, 4.0), [10, 0, 0])
    assert value == pytest.approx(1.0)


def test_quantile_overflow_clamps_to_highest_bound():
    assert histogram_quantile(0.99, (1.0, 2.0), [0, 0, 5]) == 2.0


def test_quantile_empty_returns_none():
    assert histogram_quantile(0.5, (1.0,), [0, 0]) is None


def test_quantile_across_buckets():
    # 4 below 1.0, 4 in (1.0, 2.0]: p75 is the midpoint of bucket two
    value = histogram_quantile(0.75, (1.0, 2.0), [4, 4, 0])
    assert value == pytest.approx(1.5)


def test_quantile_validates_shape():
    with pytest.raises(ConfigurationError):
        histogram_quantile(0.5, (1.0, 2.0), [1, 2])   # missing overflow


# ----------------------------------------------------------------------
# RollingWindow: sampling, windows, missing counters
# ----------------------------------------------------------------------
def test_empty_window_yields_zero_everything():
    window = RollingWindow()
    assert window.increase("x") == 0.0
    assert window.rate("x") == 0.0
    assert window.gauge("x") is None
    assert window.quantile("x", 0.5) is None
    summary = window.summary()
    assert summary["samples"] == 0
    assert summary["rates"] == {}


def test_single_sample_window_has_no_increase():
    window = RollingWindow()
    window.sample(_snap(counters={"x": 100}), at=10.0)
    assert window.increase("x") == 0.0
    assert window.rate("x") == 0.0


def test_counter_appearing_mid_window_counts_from_zero():
    # registry counters are born at 0: a name absent from earlier
    # samples must contribute its full rise, or a failure counter that
    # first increments mid-window could never alert
    window = RollingWindow()
    window.sample(_snap(), at=0.0)
    window.sample(_snap(), at=1.0)
    window.sample(_snap(counters={"fails": 3}), at=2.0)
    assert window.increase("fails") == 3.0
    assert window.rate("fails") == pytest.approx(1.5)


def test_window_keeps_baseline_sample_at_edge():
    window = RollingWindow()
    window.sample(_snap(counters={"x": 0}), at=0.0)
    window.sample(_snap(counters={"x": 10}), at=5.0)
    window.sample(_snap(counters={"x": 30}), at=10.0)
    # a 5-second window from t=10 includes the t=5 sample as baseline
    assert window.increase("x", window=5.0) == 20.0
    # a wider window reaches the t=0 baseline
    assert window.increase("x", window=20.0) == 30.0


def test_window_reset_safe_increase():
    window = RollingWindow()
    window.sample(_snap(counters={"x": 90}), at=0.0)
    window.sample(_snap(counters={"x": 5}), at=1.0)   # process restarted
    assert window.increase("x") == 5.0


def test_samples_must_be_time_ordered():
    window = RollingWindow()
    window.sample(_snap(), at=5.0)
    with pytest.raises(ConfigurationError):
        window.sample(_snap(), at=4.0)


def test_ring_buffer_caps_samples():
    window = RollingWindow(max_samples=3)
    for i in range(10):
        window.sample(_snap(counters={"x": i}), at=float(i))
    assert len(window.samples()) == 3
    assert window.increase("x") == 2.0    # only the last 3 samples


def test_summary_shape():
    window = RollingWindow()
    hist = {"buckets": list(TIME_BUCKETS),
            "counts": [0] * (len(TIME_BUCKETS) + 1), "count": 0, "sum": 0.0}
    hist2 = dict(hist, counts=[5] + [0] * len(TIME_BUCKETS), count=5,
                 sum=0.0002)
    window.sample(_snap(counters={"c": 0}, gauges={"g": 1.0},
                        histograms={"h": hist}), at=0.0)
    window.sample(_snap(counters={"c": 10}, gauges={"g": 3.0},
                        histograms={"h": hist2}), at=2.0)
    summary = window.summary()
    assert summary["samples"] == 2
    assert summary["rates"]["c"] == pytest.approx(5.0)
    assert summary["increases"]["c"] == 10.0
    assert summary["gauges"]["g"]["last"] == 3.0
    assert summary["gauges"]["g"]["delta"] == pytest.approx(2.0)
    q = summary["quantiles"]["h"]
    assert q["count"] == 5
    assert q["p50"] is not None and q["p99"] is not None


# ----------------------------------------------------------------------
# merge_snapshots over per-worker beacon snapshots
# ----------------------------------------------------------------------
def test_beacon_snapshots_merge_into_one_view():
    b0 = beacon_snapshot(0, processed=100, batches=4, ring_busy=1)
    b1 = beacon_snapshot(1, processed=250, batches=9, ring_busy=0)
    merged = merge_snapshots(b0, b1)
    assert merged["counters"]["mp.beacon.0.processed"] == 100
    assert merged["counters"]["mp.beacon.1.processed"] == 250
    assert merged["counters"]["mp.beacon.1.batches"] == 9
    assert merged["gauges"]["mp.beacon.0.ring_busy"] == 1.0
    assert merged["gauges"]["mp.beacon.1.ring_busy"] == 0.0


def test_beacon_refresh_latest_wins_via_merge():
    # the pool folds the *latest* beacon per worker; merging a stale and
    # a fresh snapshot of the same worker must not double-count gauges
    old = beacon_snapshot(0, processed=100, batches=4, ring_busy=2)
    new = beacon_snapshot(0, processed=180, batches=7, ring_busy=0)
    merged = merge_snapshots(_snap(), new)
    assert merged["gauges"]["mp.beacon.0.ring_busy"] == 0.0
    assert old["gauges"]["mp.beacon.0.ring_busy"] == 2.0


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_prometheus_series_mapping():
    # prometheus_series maps to the family base; render_prometheus adds
    # the _total suffix for counters
    family, labels, spec = prometheus_series("serve.ingest.events")
    assert family == "repro_serve_ingest_events"
    assert labels == {}
    assert spec is not None and spec.kind == "counter"
    family, labels, _ = prometheus_series("mp.beacon.3.processed")
    assert family == "repro_mp_beacon_processed"
    assert labels == {"index": "3"}


def test_render_prometheus_counters_gauges_histograms():
    hist = {"buckets": [0.1, 1.0],
            "counts": [2, 1, 1], "count": 4, "sum": 1.85}
    text = render_prometheus(_snap(
        counters={"serve.ingest.events": 7},
        gauges={"serve.queue.depth": 3.5},
        histograms={"serve.query.seconds": hist},
    ))
    lines = text.splitlines()
    assert "# TYPE repro_serve_ingest_events_total counter" in lines
    assert "repro_serve_ingest_events_total 7" in lines
    assert "repro_serve_queue_depth 3.5" in lines
    # buckets are cumulative and end at +Inf == _count
    assert 'repro_serve_query_seconds_bucket{le="0.1"} 2' in lines
    assert 'repro_serve_query_seconds_bucket{le="1"} 3' in lines
    assert 'repro_serve_query_seconds_bucket{le="+Inf"} 4' in lines
    assert "repro_serve_query_seconds_count 4" in lines
    assert "repro_serve_query_seconds_sum 1.85" in lines
    assert text.endswith("\n")


def test_render_prometheus_labels_per_worker():
    text = render_prometheus(_snap(
        counters={"mp.beacon.0.processed": 10, "mp.beacon.1.processed": 20},
    ))
    assert 'repro_mp_beacon_processed_total{index="0"} 10' in text
    assert 'repro_mp_beacon_processed_total{index="1"} 20' in text
    # one TYPE line for the shared family, not one per series
    assert text.count("# TYPE repro_mp_beacon_processed_total") == 1


# ----------------------------------------------------------------------
# Watchdog: transitions only, threshold overrides
# ----------------------------------------------------------------------
def _failure_window(count):
    window = RollingWindow()
    window.sample(_snap(counters={"serve.batch.flush_failures": 0}), at=0.0)
    window.sample(_snap(counters={"serve.batch.flush_failures": count}),
                  at=1.0)
    return window


def test_watchdog_fires_and_resolves_once_each():
    watch = Watchdog()
    window = _failure_window(3)
    events = watch.evaluate(window, now=100.0)
    fired = [e for e in events if e["state"] == "firing"]
    assert [e["alert"] for e in fired] == ["serve-flush-failures"]
    assert fired[0]["value"] == 3.0 and fired[0]["at"] == 100.0
    # still firing: no repeat event
    assert watch.evaluate(window, now=101.0) == []
    assert watch.firing() == ["serve-flush-failures"]
    # failures age out of the window: one resolved event
    window.sample(_snap(counters={"serve.batch.flush_failures": 3}),
                  at=100.0)
    window.sample(_snap(counters={"serve.batch.flush_failures": 3}),
                  at=101.0)
    events = watch.evaluate(window, now=102.0)
    assert [(e["alert"], e["state"]) for e in events] == [
        ("serve-flush-failures", "resolved")
    ]
    assert watch.firing() == []


def test_watchdog_quiet_on_clean_window():
    watch = Watchdog()
    window = _failure_window(0)
    assert watch.evaluate(window, now=1.0) == []
    assert watch.firing() == []


def test_watchdog_threshold_override():
    watch = Watchdog(thresholds={"serve-flush-failures": 10.0})
    assert watch.evaluate(_failure_window(3), now=1.0) == []
    events = watch.evaluate(_failure_window(11), now=2.0)
    assert [e["alert"] for e in events] == ["serve-flush-failures"]


def test_watchdog_rejects_unknown_override():
    with pytest.raises(ConfigurationError):
        Watchdog(thresholds={"no-such-rule": 1.0})


def test_alert_rules_catalogued():
    names = [rule.name for rule in ALERT_RULES]
    assert len(names) == len(set(names))
    assert "serve-flush-failures" in names
    assert "serve-staleness" in names
    assert "serve-accuracy-drift" in names
