"""Exporter tests: Chrome trace-event JSON, ASCII timelines, sim bridge."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Instant,
    Span,
    ascii_timeline,
    chrome_trace,
    spans_from_sim_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

RECORDS = [
    Span("w0", "work", "test", 0.0, 2.0, {"items": 3}),
    Instant("w0", "handoff", "test", 1.0),
    Span("w1", "drain", "test", 1.0, 3.0),
]


# ----------------------------------------------------------------------
# chrome_trace
# ----------------------------------------------------------------------
def test_chrome_trace_emits_expected_events_and_validates():
    doc = chrome_trace(RECORDS, scale=1.0)
    validate_chrome_trace(doc)
    phases = [event["ph"] for event in doc["traceEvents"]]
    # each new track gets its metadata row right before its first event
    assert phases == ["M", "X", "i", "M", "X"]
    span = doc["traceEvents"][1]
    assert (span["ts"], span["dur"]) == (0.0, 2.0)
    assert span["args"] == {"items": 3}
    instant = doc["traceEvents"][2]
    assert instant["s"] == "t" and "dur" not in instant
    names = {
        event["args"]["name"]
        for event in doc["traceEvents"] if event["ph"] == "M"
    }
    assert names == {"w0", "w1"}


def test_chrome_trace_scale_converts_to_microseconds():
    doc = chrome_trace([Span("w", "s", "c", 0.5, 1.5)], scale=1e6)
    span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert span["ts"] == pytest.approx(0.5e6)
    assert span["dur"] == pytest.approx(1e6)


def test_chrome_trace_truncation_and_meta_land_in_other_data():
    doc = chrome_trace(RECORDS, truncated=17, meta={"mode": "mp"})
    assert doc["otherData"] == {"truncated": 17, "mode": "mp"}
    validate_chrome_trace(doc)


def test_chrome_trace_rejects_foreign_records():
    with pytest.raises(ConfigurationError, match="cannot export"):
        chrome_trace([object()])


def test_write_chrome_trace_round_trips(tmp_path):
    path = tmp_path / "trace.json"
    doc = write_chrome_trace(str(path), RECORDS, scale=1.0)
    loaded = json.loads(path.read_text())
    assert loaded == doc
    validate_chrome_trace(loaded)


# ----------------------------------------------------------------------
# validate_chrome_trace rejections
# ----------------------------------------------------------------------
def _valid_doc():
    return chrome_trace(RECORDS, scale=1.0)


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda d: d.__setitem__("traceEvents", None), "traceEvents list"),
        (lambda d: d["traceEvents"][1].__setitem__("ph", "B"), "ph must be"),
        (lambda d: d["traceEvents"][1].__setitem__("tid", "x"),
         "tid must be an integer"),
        (lambda d: d["traceEvents"][1].__setitem__("name", ""),
         "non-empty string"),
        (lambda d: d["traceEvents"][1].__setitem__("ts", -1.0),
         "ts must be a number >= 0"),
        (lambda d: d["traceEvents"][1].__setitem__("dur", -2.0),
         "dur must be a number >= 0"),
        (lambda d: d["traceEvents"][0].__setitem__("args", {}),
         "needs args.name"),
        (lambda d: d["traceEvents"][1].__setitem__("tid", 99),
         "no thread_name metadata"),
        (lambda d: d["otherData"].__setitem__("truncated", "lots"),
         "truncated must be an integer"),
    ],
)
def test_validate_rejects_malformed_documents(mutate, message):
    doc = _valid_doc()
    mutate(doc)
    with pytest.raises(ConfigurationError, match=message):
        validate_chrome_trace(doc)


def test_validate_rejects_non_object():
    with pytest.raises(ConfigurationError, match="JSON object"):
        validate_chrome_trace([])


# ----------------------------------------------------------------------
# ascii_timeline
# ----------------------------------------------------------------------
def test_ascii_timeline_renders_tracks_fill_and_instants():
    art = ascii_timeline(RECORDS, width=24)
    lines = art.splitlines()
    assert lines[0].startswith("timeline 0 .. 3 (2 spans)")
    w0 = next(line for line in lines if line.startswith("w0"))
    w1 = next(line for line in lines if line.startswith("w1"))
    assert "#" in w0 and "!" in w0      # span fill + instant marker
    assert "#" in w1 and "!" not in w1
    assert w0.rstrip().endswith("%")


def test_ascii_timeline_empty_and_width_guard():
    assert ascii_timeline([]) == "(no trace records)"
    with pytest.raises(ConfigurationError, match="width"):
        ascii_timeline(RECORDS, width=4)


# ----------------------------------------------------------------------
# the simulator bridge
# ----------------------------------------------------------------------
def _traced_scheme_config(recorder, **kwargs):
    from repro.parallel import SchemeConfig
    from repro.simcore.engine import Engine

    return SchemeConfig(
        engine_factory=lambda machine, costs: Engine(
            machine=machine, costs=costs, tracer=recorder
        ),
        **kwargs,
    )


def test_sim_trace_bridges_to_spans_and_exports():
    from repro.parallel import run_shared
    from repro.simcore.trace import TraceRecorder
    from repro.workloads import zipf_stream

    recorder = TraceRecorder()
    stream = zipf_stream(400, 60, 1.5, seed=2)
    run_shared(stream, _traced_scheme_config(recorder, threads=3, capacity=32))
    spans, dropped = spans_from_sim_trace(recorder)
    assert spans and dropped == 0
    assert {span.track for span in spans} == {
        event.thread for event in recorder.events
    }
    first = spans[0]
    assert first.cat.startswith("sim.")
    assert "core" in first.args
    doc = chrome_trace(spans, scale=1.0, truncated=dropped)
    validate_chrome_trace(doc)
    # integer cycles export 1:1 (one "microsecond" per cycle)
    exported = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert exported["ts"] == float(recorder.events[0].start)


def test_sim_trace_bridge_propagates_truncation():
    from repro.parallel import run_shared
    from repro.simcore.trace import TraceRecorder
    from repro.workloads import zipf_stream

    recorder = TraceRecorder(limit=10)
    run_shared(
        zipf_stream(500, 60, 1.5, seed=2),
        _traced_scheme_config(recorder, threads=3, capacity=32),
    )
    spans, dropped = spans_from_sim_trace(recorder)
    assert recorder.truncated and dropped > 0
    doc = chrome_trace(spans, scale=1.0, truncated=dropped)
    assert doc["otherData"]["truncated"] == dropped
