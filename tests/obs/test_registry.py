"""Registry semantics: counters, gauges, histograms, null parity."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    coerce,
    empty_snapshot,
    merge_snapshots,
)


# ----------------------------------------------------------------------
# Counter / Gauge / Histogram semantics
# ----------------------------------------------------------------------
def test_counter_increments():
    registry = MetricsRegistry()
    counter = registry.counter("t.x.hits")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6
    assert registry.snapshot()["counters"] == {"t.x.hits": 6}


def test_counter_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    assert registry.counter("t.x.hits") is registry.counter("t.x.hits")


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    gauge = registry.gauge("t.x.level")
    gauge.set(3.5)
    gauge.set(1.25)
    assert registry.snapshot()["gauges"] == {"t.x.level": 1.25}


def test_histogram_buckets_samples_into_cells():
    registry = MetricsRegistry()
    hist = registry.histogram("t.x.depth", buckets=(1, 2, 4))
    for value in (0, 1, 2, 3, 4, 100):
        hist.observe(value)
    snap = registry.snapshot()["histograms"]["t.x.depth"]
    assert snap["buckets"] == [1, 2, 4]
    # <=1: {0, 1}; <=2: {2}; <=4: {3, 4}; overflow: {100}
    assert snap["counts"] == [2, 1, 2, 1]
    assert snap["count"] == 6
    assert snap["sum"] == 110.0
    assert hist.mean == pytest.approx(110 / 6)


def test_histogram_default_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("t.x.depth")
    assert hist.bounds == DEFAULT_BUCKETS


def test_histogram_rejects_unsorted_or_empty_bounds():
    with pytest.raises(ConfigurationError):
        Histogram(())
    with pytest.raises(ConfigurationError):
        Histogram((4, 2, 1))


def test_histogram_empty_mean_is_zero():
    assert Histogram((1,)).mean == 0.0


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("t.x.thing")
    with pytest.raises(ConfigurationError):
        registry.gauge("t.x.thing")
    with pytest.raises(ConfigurationError):
        registry.histogram("t.x.thing")
    registry.histogram("t.x.hist")
    with pytest.raises(ConfigurationError):
        registry.counter("t.x.hist")


def test_registry_introspection():
    registry = MetricsRegistry()
    registry.counter("b.second")
    registry.gauge("a.first")
    assert len(registry) == 2
    assert "a.first" in registry
    assert "missing" not in registry
    assert registry.names() == ["a.first", "b.second"]


# ----------------------------------------------------------------------
# Snapshot determinism
# ----------------------------------------------------------------------
def test_snapshot_deterministic_across_creation_order():
    def build(names):
        registry = MetricsRegistry()
        for name in names:
            registry.counter(name).inc(len(name))
        return registry.snapshot()

    names = ["z.last", "a.first", "m.middle"]
    first = build(names)
    second = build(list(reversed(names)))
    assert first == second
    assert json.dumps(first, sort_keys=False) == json.dumps(
        second, sort_keys=False
    )
    assert list(first["counters"]) == sorted(names)


def test_snapshot_is_json_ready():
    registry = MetricsRegistry()
    registry.counter("t.c").inc(3)
    registry.gauge("t.g").set(0.5)
    registry.histogram("t.h", buckets=(1, 2)).observe(1)
    snap = registry.snapshot()
    assert json.loads(json.dumps(snap)) == snap


def test_empty_snapshot_shape():
    assert MetricsRegistry().snapshot() == empty_snapshot()
    assert empty_snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


# ----------------------------------------------------------------------
# NullRegistry: no-op parity
# ----------------------------------------------------------------------
def test_null_registry_returns_shared_singletons():
    registry = NullRegistry()
    assert registry.counter("anything") is NULL_COUNTER
    assert registry.gauge("anything") is NULL_GAUGE
    assert registry.histogram("anything", buckets=(1, 2)) is NULL_HISTOGRAM


def test_null_metrics_record_nothing():
    NULL_COUNTER.inc(10)
    NULL_GAUGE.set(42.0)
    NULL_HISTOGRAM.observe(7)
    assert NULL_COUNTER.value == 0
    assert NULL_GAUGE.value == 0.0
    assert NULL_HISTOGRAM.count == 0
    assert NULL_REGISTRY.snapshot() == empty_snapshot()


def test_null_registry_api_parity_with_real_registry():
    # Every public accessor works identically; only the recording differs.
    real, null = MetricsRegistry(), NullRegistry()
    for registry in (real, null):
        registry.counter("t.c").inc()
        registry.gauge("t.g").set(1.0)
        registry.histogram("t.h").observe(1)
        assert set(registry.snapshot()) == {
            "counters", "gauges", "histograms",
        }
    assert real.enabled and not null.enabled


def test_coerce():
    registry = MetricsRegistry()
    assert coerce(registry) is registry
    assert coerce(None) is NULL_REGISTRY


# ----------------------------------------------------------------------
# merge_snapshots
# ----------------------------------------------------------------------
def _snap(counters=None, gauges=None, histograms=None):
    return {
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


def test_merge_sums_counters_and_overwrites_gauges():
    merged = merge_snapshots(
        _snap(counters={"a": 1, "b": 2}, gauges={"g": 1.0}),
        _snap(counters={"b": 3, "c": 4}, gauges={"g": 9.0}),
    )
    assert merged["counters"] == {"a": 1, "b": 5, "c": 4}
    assert merged["gauges"] == {"g": 9.0}


def test_merge_sums_matching_histograms():
    hist = {"buckets": [1, 2], "counts": [1, 0, 2], "count": 3, "sum": 7.0}
    merged = merge_snapshots(
        _snap(histograms={"h": hist}), _snap(histograms={"h": dict(hist)})
    )
    assert merged["histograms"]["h"] == {
        "buckets": [1, 2],
        "counts": [2, 0, 4],
        "count": 6,
        "sum": 14.0,
    }


def test_merge_accepts_empty_and_partial_inputs():
    assert merge_snapshots() == empty_snapshot()
    assert merge_snapshots({}, {"counters": {"a": 1}}) == _snap(
        counters={"a": 1}
    )


def test_merge_output_is_sorted():
    merged = merge_snapshots(_snap(counters={"z": 1}), _snap(counters={"a": 1}))
    assert list(merged["counters"]) == ["a", "z"]
