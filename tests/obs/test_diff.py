"""The report comparator: deltas, regression gating, graceful degrading."""

import copy
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, diff_reports


def bench_report(wall=1.0, throughput=1000.0, makespan=500.0):
    """A minimal bench-shaped report with one instrumented entry."""
    registry = MetricsRegistry()
    registry.counter("core.spacesaving.occurrences").inc(100)
    registry.gauge("sim.makespan_cycles").set(makespan)
    registry.histogram("mp.snapshot.seconds").observe(wall / 10)
    return {
        "suite": "core",
        "scale": "tiny",
        "results": [
            {
                "name": "entry-a",
                "wall_seconds": wall,
                "throughput_eps": throughput,
                "elements": 100,
                "metrics": registry.snapshot(),
            }
        ],
    }


# ----------------------------------------------------------------------
# gating
# ----------------------------------------------------------------------
def test_identical_reports_are_clean():
    report = bench_report()
    result = diff_reports(report, copy.deepcopy(report))
    assert result.ok and result.regressions == []
    assert any(line.metric == "wall_seconds" for line in result.lines)


def test_injected_2x_wall_regression_flags():
    result = diff_reports(bench_report(wall=1.0), bench_report(wall=2.0))
    assert not result.ok
    flagged = {line.metric for line in result.regressions}
    assert "wall_seconds" in flagged
    line = next(l for l in result.lines if l.metric == "wall_seconds")
    assert line.relative == pytest.approx(1.0)
    assert "REGRESSION" in result.render()


def test_gated_metric_spec_direction_applies():
    # sim.makespan_cycles declares worse="up" tolerance=0.25
    result = diff_reports(
        bench_report(makespan=1000.0), bench_report(makespan=2000.0)
    )
    assert any(
        line.metric == "sim.makespan_cycles" for line in result.regressions
    )
    # improvement never flags
    improved = diff_reports(
        bench_report(makespan=2000.0), bench_report(makespan=1000.0)
    )
    assert not any(
        line.metric == "sim.makespan_cycles" for line in improved.regressions
    )


def test_throughput_drop_flags_in_the_down_direction():
    result = diff_reports(
        bench_report(throughput=1000.0), bench_report(throughput=100.0)
    )
    assert any(line.metric == "throughput_eps" for line in result.regressions)


def test_tolerance_override_silences_the_gate():
    before, after = bench_report(wall=1.0), bench_report(wall=2.0)
    assert diff_reports(before, after, tolerance=5.0).ok
    assert not diff_reports(before, after, tolerance=0.01).ok


def test_negative_tolerance_rejected():
    with pytest.raises(ConfigurationError, match="tolerance"):
        diff_reports(bench_report(), bench_report(), tolerance=-1.0)


def test_histogram_mean_gated_count_not():
    before, after = bench_report(), bench_report()
    # mp.snapshot.seconds has no gate; use a gated one synthetically via
    # counts exploding — counts must never flag regardless
    hist = after["results"][0]["metrics"]["histograms"]["mp.snapshot.seconds"]
    hist["count"] = 100
    hist["sum"] = hist["sum"] * 100
    result = diff_reports(before, after)
    count_line = next(
        l for l in result.lines if l.metric == "mp.snapshot.seconds.count"
    )
    assert not count_line.gated and not count_line.regression


def test_zero_baseline_never_flags():
    result = diff_reports(bench_report(wall=0.0), bench_report(wall=9.0))
    line = next(l for l in result.lines if l.metric == "wall_seconds")
    assert not line.regression and line.relative is None


# ----------------------------------------------------------------------
# graceful degrading
# ----------------------------------------------------------------------
def test_one_side_only_entries_become_notes():
    before = bench_report()
    after = copy.deepcopy(before)
    after["results"][0]["name"] = "entry-b"
    result = diff_reports(before, after)
    assert result.ok
    assert any("only in before" in note for note in result.notes)
    assert any("only in after" in note for note in result.notes)
    assert any("nothing compared" in note for note in result.notes)


def test_appeared_and_disappeared_metrics_are_noted_not_flagged():
    before, after = bench_report(), bench_report()
    del before["results"][0]["metrics"]["counters"][
        "core.spacesaving.occurrences"
    ]
    del after["results"][0]["metrics"]["gauges"]["sim.makespan_cycles"]
    result = diff_reports(before, after)
    assert result.ok
    notes = {line.metric: line.note for line in result.lines if line.note}
    assert notes["core.spacesaving.occurrences"] == "appeared"
    assert notes["sim.makespan_cycles"] == "disappeared"


def test_pre_metrics_reports_compare_scalars_only():
    """Old bench reports (no metrics blocks) must diff, never crash."""
    old = {
        "results": [
            {"name": "x", "wall_seconds": 1.0},
            {"name": "y"},
        ]
    }
    result = diff_reports(copy.deepcopy(old), copy.deepcopy(old))
    assert result.ok
    y_lines = [l for l in result.lines if l.entry == "y"]
    assert [l.metric for l in y_lines] == ["(metrics)"]
    assert y_lines[0].note == "no metrics on either side"


def test_entry_filter_and_unknown_entry():
    report = bench_report()
    result = diff_reports(report, copy.deepcopy(report), entry="entry-a")
    assert result.lines
    with pytest.raises(ConfigurationError, match="no common entry"):
        diff_reports(report, copy.deepcopy(report), entry="nope")


def test_to_json_round_trips_through_json():
    result = diff_reports(bench_report(wall=1.0), bench_report(wall=2.0))
    doc = json.loads(json.dumps(result.to_json()))
    assert doc["regressions"] == len(result.regressions)
    flagged = [line for line in doc["lines"] if line["regression"]]
    assert any(line["metric"] == "wall_seconds" for line in flagged)
