"""shm-vs-pickle transport differential under adversarial scenarios.

Extends ``tests/mp/test_shm.py``'s ample-capacity parity matrix beyond
uniform zipf: the two adversarial streams (hot-key flood, eviction
poisoning) are exactly the shapes that stress the shm plane's chunk
pre-aggregation — near-distinct singleton floods produce almost no
within-chunk dedup, attack bursts produce extreme dedup — so the two
transports must still agree:

* **exactly** (same multiset of exact counts) when capacity is ample,
  because then no eviction ever happens and within-chunk reordering
  cannot show;
* **within the documented Space Saving equivalence bounds** at the
  adversary's targeted tight capacity, where eviction runs hot; and the
  merged summaries must pass the accuracy audit with zero guarantee
  violations either way.
"""

import collections

import pytest

from repro.core.space_saving import SpaceSaving
from repro.mp import MPConfig, run_mp, summaries_equivalent
from repro.scenarios import SCENARIOS, ScenarioParams, score_accuracy
from repro.testing import seed_matrix

ADVERSARIAL = sorted(
    name for name, s in SCENARIOS.items() if s.kind == "adversarial"
)

_PARAMS = ScenarioParams(length=2_500, alphabet=300, capacity=32, seed=7)


def _canonical(counter):
    return sorted(
        (str(e.element), e.count, e.error) for e in counter.entries()
    )


def _run(stream, capacity, transport, how="hash"):
    config = MPConfig(
        workers=3,
        capacity=capacity,
        chunk_elements=512,
        partition_how=how,
        transport=transport,
    )
    return run_mp(stream, config)


def test_adversarial_matrix_is_nonempty():
    assert ADVERSARIAL == ["eviction-poison", "hot-key-flood"]


@pytest.mark.parametrize("how", ["hash", "round_robin", "block"])
@pytest.mark.parametrize("name", ADVERSARIAL)
def test_transports_match_exactly_at_ample_capacity(name, how):
    """Capacity above the distinct-key count: both transports must
    produce the identical multiset of exact counts, even though the
    poison stream is ~95% singletons (worst case for chunk dedup)."""
    stream = SCENARIOS[name].build(_PARAMS)
    ample = len(set(stream)) + 16
    shm = _run(stream, ample, "shm", how)
    pickle = _run(stream, ample, "pickle", how)
    assert _canonical(shm.counter) == _canonical(pickle.counter)
    assert shm.elements == pickle.elements == len(stream)
    # ample capacity means exact counts: zero error against truth
    truth = collections.Counter(stream)
    assert all(
        e.count == truth[e.element] for e in shm.counter.entries()
    )


@pytest.mark.parametrize("name", ADVERSARIAL)
@pytest.mark.parametrize("seed", seed_matrix(7, 31))
def test_transports_equivalent_at_the_attacked_capacity(name, seed):
    """At the adversary's own target capacity eviction churns hard;
    shm and pickle may order differently inside chunks but must stay
    within the documented equivalence bounds of each other and of the
    sequential reference — with a clean accuracy audit."""
    params = ScenarioParams(
        length=_PARAMS.length,
        alphabet=_PARAMS.alphabet,
        capacity=_PARAMS.capacity,
        seed=seed,
    )
    stream = SCENARIOS[name].build(params)
    sequential = SpaceSaving(capacity=params.capacity)
    sequential.process_many(stream)
    truth = collections.Counter(stream)
    merged = {}
    for transport in ("shm", "pickle"):
        result = _run(stream, params.capacity, transport)
        merged[transport] = result.counter
        report = score_accuracy(
            result.counter, truth, k=10, merged=True
        )
        assert report.guarantee_violations == 0, (name, transport)
        assert report.max_underestimate == 0, (name, transport)
    assert summaries_equivalent(sequential, merged["shm"], k=10)
    assert summaries_equivalent(sequential, merged["pickle"], k=10)
    assert summaries_equivalent(merged["pickle"], merged["shm"], k=10)
    assert merged["shm"].processed == merged["pickle"].processed
