"""The multiprocess sharded pool: counting, queries, failure modes.

The crash/timeout tests use the config's fault-injection hook so the
typed error paths run against *real* dying processes, not mocks; every
test asserts the pool is closed and all workers joined afterwards — the
"no hung pools" guarantee.
"""

import pytest

from repro.core.space_saving import SpaceSaving
from repro.errors import (
    BackendError,
    ConfigurationError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.mp import MPConfig, ShardedProcessPool, summaries_equivalent
from repro.workloads import zipf_stream


def _canonical(counter):
    return sorted(
        (str(e.element), e.count, e.error) for e in counter.entries()
    )


def _assert_joined(pool):
    assert pool.closed
    assert all(code is not None for code in pool.worker_exitcodes())


@pytest.fixture
def stream():
    return zipf_stream(20_000, 2_000, 1.2, seed=11)


def test_count_and_merge_matches_heavy_hitters(stream):
    sequential = SpaceSaving(capacity=128)
    sequential.process_many(stream)
    with ShardedProcessPool(
        MPConfig(workers=3, capacity=128, chunk_elements=4_096)
    ) as pool:
        assert pool.count(stream) == len(stream)
        assert pool.processed == len(stream)
        merged = pool.merged()
    _assert_joined(pool)
    assert merged.processed == len(stream)
    assert summaries_equivalent(sequential, merged, k=10)
    # hash sharding keeps each element whole on one shard, so the top
    # elements come out in the same order as the sequential answer
    top_seq = [e.element for e in sequential.top_k(5)]
    top_mp = [e.element for e in merged.top_k(5)]
    assert top_seq == top_mp


def test_single_worker_is_identical_to_sequential(stream):
    """With one worker every batch lands on the same shard in stream
    order, and process_many is pinned observationally identical to the
    per-element path — so the merged result must match exactly.  Pinned
    to the pickle transport: it is the order-exact plane (the shm plane
    pre-aggregates each chunk, which legitimately reorders within it)."""
    sequential = SpaceSaving(capacity=64)
    sequential.process_many(stream)
    with ShardedProcessPool(
        MPConfig(
            workers=1, capacity=64, chunk_elements=1_000, transport="pickle"
        )
    ) as pool:
        pool.count(stream)
        merged = pool.merged()
    assert _canonical(merged) == _canonical(sequential)
    assert merged.processed == sequential.processed


def test_incremental_counting_between_queries(stream):
    half = len(stream) // 2
    with ShardedProcessPool(MPConfig(workers=2, capacity=128)) as pool:
        pool.count(stream[:half])
        first = pool.merged()
        pool.count(stream[half:])
        second = pool.merged()
    assert first.processed == half
    assert second.processed == len(stream)


def test_count_accepts_iterators():
    with ShardedProcessPool(
        MPConfig(workers=2, capacity=32, chunk_elements=100)
    ) as pool:
        sent = pool.count(iter(range(1_000)))
        merged = pool.merged()
    assert sent == 1_000
    assert merged.processed == 1_000


def test_merged_capacity_override(stream):
    with ShardedProcessPool(MPConfig(workers=2, capacity=64)) as pool:
        pool.count(stream)
        merged = pool.merged(capacity=5)
    assert len(merged) <= 5


def test_snapshot_shards_partition_processed(stream):
    with ShardedProcessPool(MPConfig(workers=4, capacity=64)) as pool:
        pool.count(stream)
        shards = pool.snapshot()
    assert len(shards) == 4
    assert sum(shard.processed for shard in shards) == len(stream)


def test_worker_raise_propagates_typed_crash():
    pool = ShardedProcessPool(
        MPConfig(workers=2, capacity=32, chunk_elements=64, fault="raise")
    )
    with pytest.raises(WorkerCrashError) as excinfo:
        pool.count(range(2_000))
        pool.merged()
    assert "injected fault" in str(excinfo.value)
    assert excinfo.value.worker in (0, 1)
    _assert_joined(pool)


def test_worker_hard_exit_propagates_typed_crash():
    pool = ShardedProcessPool(
        MPConfig(workers=2, capacity=32, chunk_elements=64, fault="exit")
    )
    with pytest.raises(WorkerCrashError) as excinfo:
        pool.count(range(2_000))
        pool.merged()
    assert excinfo.value.exitcode is not None
    _assert_joined(pool)


def test_hung_worker_propagates_typed_timeout():
    pool = ShardedProcessPool(
        MPConfig(
            workers=1,
            capacity=32,
            chunk_elements=4,
            queue_depth=2,
            fault="hang",
            timeout=0.4,
        )
    )
    with pytest.raises(WorkerTimeoutError) as excinfo:
        pool.count(range(400))
        pool.merged()
    assert excinfo.value.timeout == pytest.approx(0.4)
    assert excinfo.value.where in ("dispatch", "snapshot")
    _assert_joined(pool)


def test_closed_pool_rejects_use():
    pool = ShardedProcessPool(MPConfig(workers=1, capacity=8))
    pool.close()
    _assert_joined(pool)
    with pytest.raises(BackendError):
        pool.count([1, 2, 3])
    with pytest.raises(BackendError):
        pool.snapshot()
    pool.close()  # idempotent


def test_config_validation():
    for bad in (
        dict(workers=0),
        dict(capacity=0),
        dict(chunk_elements=0),
        dict(partition_how="bogus"),
        dict(timeout=0),
        dict(queue_depth=0),
        dict(start_method="threads"),
        dict(fault="explode"),
        dict(transport="carrier-pigeon"),
        dict(ring_segments=0),
    ):
        with pytest.raises(ConfigurationError):
            MPConfig(**bad)


def test_round_robin_partitioning_also_merges_correctly(stream):
    """Non-hash routing splits an element across shards; the merge's
    error widening must still keep estimates upper bounds."""
    from collections import Counter

    truth = Counter(stream)
    with ShardedProcessPool(
        MPConfig(workers=3, capacity=256, partition_how="round_robin")
    ) as pool:
        pool.count(stream)
        merged = pool.merged()
    for element, count in truth.most_common(5):
        assert merged.estimate(element) >= count
        assert merged.estimate(element) - merged.error(element) <= count
