"""One-table mode: a single shared Count-Min table under all workers.

The load-bearing properties pinned here:

* **W=1 bit-equality** — with one worker the shared table must equal a
  sequential vectorized :class:`CountMinSketch` fed the same chunks
  (same seed, same geometry), the strongest differential available.
* **Bound compliance** — estimates never drop below true counts, and
  ``count - error`` never exceeds them, at every worker count even
  though nobody synchronizes on the table.
* **Flush / staleness** — ``flush()`` quiesces the pipeline (staleness
  0 afterwards); live ``peek`` widens its error by the staleness slack.
* **Fault paths** — the typed crash/timeout errors of the sharded pool
  survive unchanged in one-table mode; workers never hang the parent.
"""

from collections import Counter

import numpy as np
import pytest

from repro.core.sketches.count_min import CountMinSketch
from repro.errors import (
    BackendError,
    ConfigurationError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.mp import MPConfig, OneTablePool
from repro.mp.driver import run_mp
from repro.workloads import zipf_stream


def _config(workers, **overrides):
    base = dict(
        workers=workers,
        capacity=64,
        chunk_elements=512,
        mode="one_table",
        sketch_epsilon=0.005,
        sketch_delta=0.05,
        sketch_seed=13,
        timeout=60.0,
    )
    base.update(overrides)
    return MPConfig(**base)


def _assert_joined(pool):
    assert pool.closed
    assert all(code is not None for code in pool.worker_exitcodes())


@pytest.fixture
def stream():
    return zipf_stream(20_000, 2_000, 1.3, seed=19)


def test_config_rejects_incompatible_mode_combinations():
    with pytest.raises(ConfigurationError):
        MPConfig(workers=2, mode="one_table", transport="pickle")
    with pytest.raises(ConfigurationError):
        MPConfig(workers=2, mode="one_table", partition_how="round_robin")
    with pytest.raises(ConfigurationError):
        MPConfig(workers=2, mode="banded")


def test_single_worker_table_matches_sequential_sketch(stream):
    reference = CountMinSketch(epsilon=0.005, delta=0.05, seed=13)
    with OneTablePool(_config(1)) as pool:
        pool.count(stream)
        pool.flush()
        for start in range(0, len(stream), 512):
            chunk = stream[start:start + 512]
            codes, weights = reference.codec.encode_chunk(chunk)
            reference.process_weighted(codes, weights)
        # one worker -> the band spans the whole (possibly rounded-up)
        # width; compare on the reference geometry.  Copy before close:
        # a live view would pin the shm buffer open.
        shared = pool._table.table[:, :reference.width].copy()
    assert np.array_equal(shared, reference.table)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bound_compliance_at_every_worker_count(stream, workers):
    truth = Counter(stream)
    with OneTablePool(_config(workers)) as pool:
        pool.count(stream)
        merged = pool.merged()
    assert merged.processed == len(stream)
    for entry in merged.entries():
        true_count = truth[entry.element]
        assert entry.count >= true_count          # CM never under
        assert entry.count - entry.error <= true_count
    top_element, top_count = truth.most_common(1)[0]
    assert merged.estimate(top_element) >= top_count


def test_top_k_matches_peek_prefix(stream):
    truth = Counter(stream)
    with OneTablePool(_config(2)) as pool:
        pool.count(stream)
        pool.flush()
        top = pool.top_k(10, strict=True)
        summary = pool.peek(strict=True)
    assert len(top) == 10
    counts = [entry.count for entry in top]
    assert counts == sorted(counts, reverse=True)
    # the zero-materialization path returns the same estimates as the
    # full SpaceSaving materialization for the shared candidate set
    by_element = {entry.element: entry.count for entry in summary.entries()}
    for entry in top:
        assert entry.count == by_element[entry.element]
        assert entry.count >= truth[entry.element]  # CM never under
        assert entry.count - entry.error <= truth[entry.element]


def test_top_k_live_widens_by_staleness(stream):
    with OneTablePool(_config(2)) as pool:
        pool.count(stream)
        live = pool.top_k(5)          # no flush: staleness slack added
        pool.flush()
        strict = pool.top_k(5, strict=True)
    assert len(live) == 5 and len(strict) == 5
    strict_counts = {entry.element: entry.count for entry in strict}
    for entry in live:
        if entry.element in strict_counts:
            assert entry.count >= strict_counts[entry.element]


def test_flush_quiesces_and_staleness_is_bounded(stream):
    with OneTablePool(_config(2)) as pool:
        pool.count(stream)
        assert pool.staleness() >= 0
        applied = pool.flush()
        assert applied == len(stream)
        assert pool.staleness() == 0


def test_live_peek_widens_by_staleness(stream):
    truth = Counter(stream)
    with OneTablePool(_config(2)) as pool:
        pool.count(stream)
        live = pool.peek()           # no flush: staleness slack added
        pool.flush()
        strict = pool.peek(strict=True)
    top_element, top_count = truth.most_common(1)[0]
    live_entry = {e.element: e for e in live.entries()}.get(top_element)
    strict_entry = {e.element: e for e in strict.entries()}[top_element]
    assert strict_entry.count >= top_count
    if live_entry is not None:
        # the widened live estimate still upper-bounds truth and its
        # interval still contains it
        assert live_entry.count >= strict_entry.count - 0  # slack >= 0
        assert live_entry.count - live_entry.error <= top_count


def test_snapshot_api_is_redirected():
    with OneTablePool(_config(2)) as pool:
        pool.count(range(1000))
        with pytest.raises(BackendError):
            pool.snapshot()


def test_detached_sketch_survives_pool_close(stream):
    truth = Counter(stream)
    pool = OneTablePool(_config(2))
    try:
        pool.count(stream)
        pool.flush()
        sketch = pool.sketch()
    finally:
        pool.close()
    _assert_joined(pool)
    top_element, top_count = truth.most_common(1)[0]
    assert sketch.estimate(top_element) >= top_count
    assert sketch.estimate("never-seen-key") == 0
    assert sketch.error_bound() >= 0


def test_band_bounds_cover_dispatched_traffic(stream):
    with OneTablePool(_config(4)) as pool:
        pool.count(stream)
        pool.flush()
        bounds = pool.band_bounds()
    assert bounds.shape == (4,)
    assert (bounds >= 0).all()


def test_driver_one_table_mode(stream):
    result = run_mp(stream, _config(2))
    assert result.scheme == "mp-one-table"
    assert result.elements == len(stream)
    assert result.counter.processed == len(stream)
    assert result.extras["mode"] == "one_table"
    assert result.extras["snapshot_seconds"] >= 0.0
    table = result.extras["table"]
    assert table["band_width"] * 2 >= table["width"]
    truth = Counter(stream)
    for entry in result.counter.entries():
        assert entry.count >= truth[entry.element]


def test_worker_raise_propagates_typed_crash():
    pool = OneTablePool(_config(2, chunk_elements=64, fault="raise"))
    with pytest.raises(WorkerCrashError) as excinfo:
        pool.count(range(2_000))
        pool.merged()
    assert "injected fault" in str(excinfo.value)
    _assert_joined(pool)


def test_worker_hard_exit_propagates_typed_crash():
    pool = OneTablePool(_config(2, chunk_elements=64, fault="exit"))
    with pytest.raises(WorkerCrashError) as excinfo:
        pool.count(range(2_000))
        pool.merged()
    assert excinfo.value.exitcode is not None
    _assert_joined(pool)


def test_hung_worker_propagates_typed_timeout():
    pool = OneTablePool(
        _config(1, chunk_elements=4, queue_depth=2, fault="hang",
                timeout=0.4)
    )
    with pytest.raises(WorkerTimeoutError):
        pool.count(range(400))
        pool.merged()
    _assert_joined(pool)


def test_closed_pool_rejects_use():
    pool = OneTablePool(_config(1))
    pool.close()
    _assert_joined(pool)
    with pytest.raises(BackendError):
        pool.count([1, 2, 3])
    pool.close()  # idempotent
