"""The run_mp driver and the result-equivalence predicate."""

import pytest

from repro.core.counters import CounterEntry
from repro.core.space_saving import SpaceSaving
from repro.errors import WorkerCrashError
from repro.mp import MPConfig, run_mp, summaries_equivalent
from repro.workloads import zipf_stream


@pytest.fixture
def stream():
    return zipf_stream(15_000, 1_500, 1.3, seed=5)


def test_run_mp_result_shape(stream):
    result = run_mp(stream, MPConfig(workers=2, capacity=128))
    assert result.scheme == "mp-sharded"
    assert result.workers == 2
    assert result.elements == len(stream)
    assert result.wall_seconds > 0
    assert result.startup_seconds > 0
    assert result.seconds == result.wall_seconds
    assert result.throughput > 0
    assert result.counter.processed == len(stream)
    assert result.extras["partition_how"] == "hash"


def test_run_mp_equivalent_to_sequential(stream):
    sequential = SpaceSaving(capacity=128)
    sequential.process_many(stream)
    result = run_mp(stream, MPConfig(workers=4, capacity=128))
    assert summaries_equivalent(sequential, result.counter, k=10)


def test_run_mp_default_config(stream):
    result = run_mp(stream)
    assert result.workers == MPConfig().workers
    assert result.counter.processed == len(stream)


def test_run_mp_closes_pool_on_crash():
    with pytest.raises(WorkerCrashError):
        run_mp(range(5_000), MPConfig(workers=2, capacity=32, fault="raise"))


def _summary(triples, processed, capacity=8):
    return SpaceSaving.from_entries(
        capacity, [CounterEntry(e, c, err) for e, c, err in triples], processed
    )


def test_summaries_equivalent_accepts_itself():
    summary = _summary([("a", 10, 0), ("b", 5, 1)], 15)
    assert summaries_equivalent(summary, summary)


def test_summaries_equivalent_rejects_processed_mismatch():
    a = _summary([("a", 10, 0)], 10)
    b = _summary([("a", 10, 0)], 11)
    assert not summaries_equivalent(a, b)


def test_summaries_equivalent_rejects_disjoint_counts():
    a = _summary([("a", 100, 0)], 100)
    b = _summary([("a", 10, 0)], 100)
    assert not summaries_equivalent(a, b)


def test_summaries_equivalent_overlapping_error_windows():
    # [8, 10] vs [9, 12] overlap: both can bound the same true count
    a = _summary([("a", 10, 2)], 10)
    b = _summary([("a", 12, 3)], 10)
    assert summaries_equivalent(a, b)


def test_summaries_equivalent_missing_element():
    # "b" is guaranteed >= 4 in the reference but absent from a
    # candidate whose max error is 0: impossible for the same stream.
    a = _summary([("a", 10, 0), ("b", 5, 1)], 15)
    b = _summary([("a", 10, 0)], 15)
    assert not summaries_equivalent(a, b)
