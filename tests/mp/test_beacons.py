"""Worker telemetry beacons: the mp pool's live occupancy feed.

Beacons are advisory (`mp.beacon.<i>.*` snapshots shipped on the reply
queue every N batches) — these tests pin that they arrive, fold
latest-wins per worker, merge into one registry-shaped snapshot, and
surface through the Backend ``telemetry()`` hook the serve tier
feature-detects.  They must never change counting results or keep a
pool from joining cleanly.
"""

from repro.backend import create_backend
from repro.mp import MPConfig, ShardedProcessPool
from repro.obs.registry import MetricsRegistry
from repro.workloads import zipf_stream


def _assert_joined(pool):
    assert pool.closed
    assert all(code is not None for code in pool.worker_exitcodes())


def test_pool_collects_per_worker_beacons():
    stream = zipf_stream(20_000, 2_000, 1.2, seed=11)
    metrics = MetricsRegistry()
    with ShardedProcessPool(
        MPConfig(workers=2, capacity=128, chunk_elements=512,
                 beacon_every=2),
        metrics=metrics,
    ) as pool:
        assert pool.count(stream) == len(stream)
        beacons = pool.poll_beacons()
        assert set(beacons) == {0, 1}
        total = 0
        for index, snap in beacons.items():
            prefix = f"mp.beacon.{index}"
            counters = snap["counters"]
            assert counters[f"{prefix}.batches"] >= 2
            assert counters[f"{prefix}.processed"] > 0
            total += counters[f"{prefix}.processed"]
            assert f"{prefix}.ring_busy" in snap["gauges"]
        # beacons lag by up to beacon_every batches but never overcount
        assert 0 < total <= len(stream)

        merged = pool.beacon_snapshot()
        assert merged["counters"]["mp.beacon.0.processed"] == (
            beacons[0]["counters"]["mp.beacon.0.processed"]
        )
        assert merged["counters"]["mp.beacon.1.batches"] == (
            beacons[1]["counters"]["mp.beacon.1.batches"]
        )
    _assert_joined(pool)
    counters = metrics.snapshot()["counters"]
    assert counters["mp.beacons.received"] > 0
    # beacons ride the reply queue but are folded, never "discarded"
    assert counters.get("mp.replies.discarded", 0) == 0


def test_beacons_do_not_change_counts():
    stream = zipf_stream(10_000, 1_000, 1.3, seed=7)
    results = {}
    for every in (0, 2):
        with ShardedProcessPool(
            MPConfig(workers=2, capacity=128, chunk_elements=512,
                     beacon_every=every)
        ) as pool:
            pool.count(stream)
            merged = pool.merged()
            if every == 0:
                assert pool.poll_beacons() == {}
            results[every] = sorted(
                (str(e.element), e.count, e.error)
                for e in merged.entries()
            )
        _assert_joined(pool)
    assert results[0] == results[2]


def test_backend_telemetry_merges_worker_beacons():
    stream = zipf_stream(40_000, 500, 1.2, seed=3)
    backend = create_backend(
        "mp-shm", capacity=128, workers=2, chunk_elements=256,
    )
    try:
        # the adapter uses MPConfig's default beacon_every (32 batches);
        # ~156 chunks over 2 workers puts each well past that
        backend.ingest(stream)
        telemetry = backend.telemetry()
        counters = telemetry["counters"]
        beacon_names = [n for n in counters if n.startswith("mp.beacon.")]
        assert beacon_names, "no beacons surfaced through telemetry()"
        assert any(n.endswith(".processed") for n in beacon_names)
        assert any(
            n.startswith("mp.beacon.") for n in telemetry["gauges"]
        )
        # telemetry is read-only: counting is unaffected
        assert backend.snapshot().processed == len(stream)
    finally:
        backend.close()
