"""The shared-memory data plane: codec, rings, and shm-vs-pickle parity.

Three layers of confidence:

* unit tests on the pieces (``StreamCodec`` roundtrips, ``route_coded``
  invariants, ``ShmRing`` fill/read/free protocol);
* differential tests pinning the shm transport against the pickle
  reference — *exactly* at ample capacity (no eviction ever happens, so
  pre-aggregation's reordering latitude cannot show) across every
  partitioner and several seeds, and within the documented equivalence
  bounds under tight capacity;
* regression tests for the shutdown/clock bugs this plane shipped with:
  clean runs must leave every worker at exit code 0, and driver spans
  must use the tracer's (rebindable) clock for both edges.
"""

import time

import numpy as np
import pytest

from repro.core.space_saving import SpaceSaving
from repro.errors import StreamError, WorkerCrashError
from repro.mp import MPConfig, ShardedProcessPool, run_mp, summaries_equivalent
from repro.mp.shm import (
    SEG_BUSY,
    SEG_FREE,
    ShmRing,
    ShmRingReader,
    StreamCodec,
    route_coded,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Span, Tracer
from repro.workloads import zipf_stream


# ----------------------------------------------------------------------
# StreamCodec
# ----------------------------------------------------------------------
def _decode_pairs(codec, codes, weights):
    return {codec.decode(int(c)): int(w) for c, w in zip(codes, weights)}


def test_codec_int_fast_lane_roundtrip():
    codec = StreamCodec()
    chunk = [5, -3, 5, 0, 5, -3, 2**40]
    codes, weights = codec.encode_chunk(chunk)
    assert codes.dtype == np.int64 and weights.dtype == np.int64
    assert _decode_pairs(codec, codes, weights) == {
        5: 3, -3: 2, 0: 1, 2**40: 1,
    }
    # int keys are identity-coded: no vocabulary entries needed
    assert codec.vocab_size == 0


def test_codec_string_and_mixed_chunks_roundtrip():
    codec = StreamCodec()
    chunk = ["a", "b", "a", 7, ("t", 1), 7, "a"]
    codes, weights = codec.encode_chunk(chunk)
    assert _decode_pairs(codec, codes, weights) == {
        "a": 3, "b": 1, 7: 2, ("t", 1): 1,
    }
    # codes are stable across chunks (the vocabulary is shared state)
    again, _ = codec.encode_chunk(["b", "b"])
    b_code = next(
        int(c) for c, w in zip(codes, weights)
        if codec.decode(int(c)) == "b"
    )
    assert int(again[0]) == b_code


def test_codec_huge_and_boundary_ints_fall_back_safely():
    codec = StreamCodec()
    huge = 2**70           # overflows int64: must take the vocab lane
    edge = 2**62           # survives int64 but not the << 1 coding
    chunk = [huge, edge, 1, huge]
    codes, weights = codec.encode_chunk(chunk)
    assert _decode_pairs(codec, codes, weights) == {huge: 2, edge: 1, 1: 1}
    assert codec.vocab_size == 2   # huge + edge; 1 is identity-coded


def test_codec_empty_chunk():
    codes, weights = StreamCodec().encode_chunk([])
    assert len(codes) == 0 and len(weights) == 0


def test_codec_decode_entries():
    codec = StreamCodec()
    codes, weights = codec.encode_chunk(["x", 9, "x"])
    triples = [(int(c), int(w), 0) for c, w in zip(codes, weights)]
    decoded = dict(
        (element, count) for element, count, _ in codec.decode_entries(triples)
    )
    assert decoded == {"x": 2, 9: 1}


# ----------------------------------------------------------------------
# route_coded
# ----------------------------------------------------------------------
@pytest.mark.parametrize("how", ["hash", "round_robin", "block"])
def test_route_coded_partitions_weights_exactly(how):
    codec = StreamCodec()
    codes, weights = codec.encode_chunk(list(range(100)) * 3)
    routed = route_coded(codes, weights, 4, how)
    assert len(routed) == 4
    total = sum(int(w.sum()) for _, w in routed)
    assert total == 300
    # every shard gets something from 100 distinct elements
    assert all(len(c) > 0 for c, _ in routed)


def test_route_coded_hash_uses_all_shards_for_identity_codes():
    """Identity codes are all even; routing on the raw code would starve
    every odd shard.  The router must hash the decoded value."""
    codec = StreamCodec()
    codes, weights = codec.encode_chunk(list(range(64)))
    routed = route_coded(codes, weights, 2, "hash")
    assert all(len(c) > 0 for c, _ in routed)


def test_route_coded_is_sticky_per_element():
    codec = StreamCodec()
    first, w1 = codec.encode_chunk([1, 2, 3, 4, 5])
    second, w2 = codec.encode_chunk([5, 4, 3, 2, 1])
    homes = {}
    for codes, weights in ((first, w1), (second, w2)):
        for shard, (shard_codes, _) in enumerate(
            route_coded(codes, weights, 3, "hash")
        ):
            for code in shard_codes:
                element = codec.decode(int(code))
                assert homes.setdefault(element, shard) == shard


def test_route_coded_single_part_and_validation():
    codes = np.array([2, 4], dtype=np.int64)
    weights = np.array([1, 1], dtype=np.int64)
    (only, w), = route_coded(codes, weights, 1, "hash")
    assert list(only) == [2, 4]
    with pytest.raises(StreamError):
        route_coded(codes, weights, 0, "hash")
    with pytest.raises(StreamError):
        route_coded(codes, weights, 2, "bogus")


# ----------------------------------------------------------------------
# ShmRing protocol
# ----------------------------------------------------------------------
def test_ring_fill_read_free_cycle():
    ring = ShmRing(slots=8, segments=2)
    try:
        reader = ShmRingReader(ring.name, 8, 2)
        codes = np.array([10, 20, 30], dtype=np.int64)
        weights = np.array([1, 2, 3], dtype=np.int64)
        assert ring.is_free(0) and ring.is_free(1)
        nbytes = ring.fill(0, codes, weights)
        assert nbytes == 3 * 16
        assert not ring.is_free(0)
        assert ring.busy_segments() == 1
        got_codes, got_weights = reader.read(0, 3)
        assert got_codes == [10, 20, 30]
        assert got_weights == [1, 2, 3]
        # the reader freed the segment before "counting": double buffering
        assert ring.is_free(0)
        assert ring.busy_segments() == 0
        reader.close()
    finally:
        ring.close()
        ring.close()  # idempotent


def test_ring_rejects_oversized_batches_and_bad_shapes():
    with pytest.raises(StreamError):
        ShmRing(slots=0, segments=2)
    with pytest.raises(StreamError):
        ShmRing(slots=4, segments=0)
    ring = ShmRing(slots=4, segments=1)
    try:
        too_big = np.arange(5, dtype=np.int64)
        with pytest.raises(StreamError):
            ring.fill(0, too_big, too_big)
    finally:
        ring.close()


def test_ring_status_flags_are_plain_bytes():
    # the one-byte flags ARE the protocol: pin their values
    assert SEG_FREE == 0 and SEG_BUSY == 1


# ----------------------------------------------------------------------
# shm vs pickle differential
# ----------------------------------------------------------------------
def _canonical(counter):
    return sorted(
        (str(e.element), e.count, e.error) for e in counter.entries()
    )


@pytest.mark.parametrize("how", ["hash", "round_robin", "block"])
@pytest.mark.parametrize("seed", [3, 11])
def test_shm_matches_pickle_exactly_at_ample_capacity(how, seed):
    """With capacity above the alphabet size no eviction ever happens,
    so both transports must produce the *same multiset of exact counts*
    regardless of the shm plane's within-chunk reordering."""
    stream = zipf_stream(6_000, 150, 1.1, seed=seed)
    results = {}
    for transport in ("shm", "pickle"):
        config = MPConfig(
            workers=3,
            capacity=512,
            chunk_elements=700,
            partition_how=how,
            transport=transport,
        )
        result = run_mp(stream, config)
        results[transport] = result
    assert _canonical(results["shm"].counter) == _canonical(
        results["pickle"].counter
    )
    assert results["shm"].elements == results["pickle"].elements


def test_shm_equivalent_to_pickle_under_eviction():
    stream = zipf_stream(20_000, 2_000, 1.2, seed=11)
    merged = {}
    for transport in ("shm", "pickle"):
        config = MPConfig(
            workers=3, capacity=128, chunk_elements=4_096, transport=transport
        )
        merged[transport] = run_mp(stream, config).counter
    sequential = SpaceSaving(capacity=128)
    sequential.process_many(stream)
    assert summaries_equivalent(sequential, merged["shm"], k=10)
    assert summaries_equivalent(merged["pickle"], merged["shm"], k=10)
    assert merged["shm"].processed == merged["pickle"].processed


def test_shm_handles_string_streams():
    stream = [f"key-{i % 37}" for i in range(5_000)]
    result = run_mp(
        stream, MPConfig(workers=2, capacity=64, chunk_elements=512)
    )
    assert result.counter.processed == 5_000
    assert result.counter.estimate("key-0") == len(stream) // 37 + 1


# ----------------------------------------------------------------------
# Shutdown and clock regressions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["shm", "pickle"])
def test_clean_run_leaves_all_workers_at_exit_code_zero(transport):
    """A normal run must never produce a crash exit: the stop ack used
    to race queue teardown and turn clean shutdowns into exit code 17."""
    stream = zipf_stream(8_000, 500, 1.1, seed=5)
    pool = ShardedProcessPool(
        MPConfig(workers=4, capacity=64, transport=transport)
    )
    pool.count(stream)
    pool.merged()
    pool.close()
    assert pool.worker_exitcodes() == [0, 0, 0, 0]


def test_driver_spans_use_the_tracer_clock_for_both_edges():
    """Driver spans must take start AND end from the tracer's clock.
    The regression: starts came from ``time.perf_counter()`` while ends
    came from ``tracer.now()`` — invisible while the tracer's clock *is*
    perf_counter, garbage the moment it is rebound."""
    base = 1e12
    ticks = iter(range(1, 100_000))
    tracer = Tracer(clock=lambda: base + next(ticks))
    stream = zipf_stream(4_000, 300, 1.1, seed=2)
    run_mp(stream, MPConfig(workers=2, capacity=64), tracer=tracer)
    driver_spans = [
        r for r in tracer.records()
        if isinstance(r, Span) and r.track == "driver"
    ]
    names = {s.name for s in driver_spans}
    assert {"dispatch", "snapshot", "merge"} <= names
    for span in driver_spans:
        assert span.start >= base, f"{span.name} start off the tracer clock"
        assert span.end >= span.start


def test_stale_replies_are_counted_and_surfaced():
    """Non-error replies crossing an error sweep must be metered (not
    silently swallowed) and mentioned in the crash detail."""
    registry = MetricsRegistry()
    pool = ShardedProcessPool(
        MPConfig(workers=1, capacity=16), metrics=registry
    )
    try:
        # a stale snapshot reply from an abandoned query, then an error
        pool._replies.put((0, "snapshot", 99, [], 0, 16))
        pool._replies.put((0, "error", "boom"))
        deadline = time.monotonic() + 5.0
        with pytest.raises(WorkerCrashError) as excinfo:
            # put() hands to a feeder thread; poll until both messages
            # have actually crossed the pipe
            while time.monotonic() < deadline:
                pool._poll_for_errors()
                time.sleep(0.01)
        assert "boom" in str(excinfo.value)
        assert "snapshot" in str(excinfo.value)
        assert registry.snapshot()["counters"]["mp.replies.discarded"] == 1
    finally:
        pool.close()


def test_shm_run_emits_plane_metrics():
    registry = MetricsRegistry()
    stream = zipf_stream(6_000, 400, 1.1, seed=9)
    result = run_mp(
        stream,
        MPConfig(workers=2, capacity=64, chunk_elements=1_000),
        metrics=registry,
    )
    counters = result.extras["metrics"]["counters"]
    assert counters["mp.shm.bytes"] > 0
    assert counters["mp.dispatched.items"] == len(stream)
    assert result.extras["transport"] == "shm"
    # occupancy was sampled once per shipped batch
    occupancy = result.extras["metrics"]["histograms"][
        "mp.shm.ring_occupancy"
    ]
    assert occupancy["count"] == counters["mp.dispatched.batches"]
