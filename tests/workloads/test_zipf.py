"""Unit tests for zipfian stream generation."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.workloads.zipf import (
    ZipfStreamSpec,
    expected_frequency,
    paper_scaled_spec,
    zipf_stream,
    zipf_weights,
)


def test_weights_sum_to_one():
    weights = zipf_weights(1000, 2.0)
    assert weights.sum() == pytest.approx(1.0)


def test_weights_strictly_decreasing_for_positive_alpha():
    weights = zipf_weights(50, 1.5)
    assert all(weights[i] > weights[i + 1] for i in range(49))


def test_alpha_zero_is_uniform():
    weights = zipf_weights(10, 0.0)
    assert np.allclose(weights, 0.1)


def test_paper_formula_matches():
    """f_i = N / (i^alpha * zeta(alpha)) with zeta truncated at |A|."""
    alphabet, alpha, length = 100, 2.0, 10_000
    zeta = sum(1.0 / i**alpha for i in range(1, alphabet + 1))
    for rank in (1, 5, 50):
        expected = length / (rank**alpha * zeta)
        assert expected_frequency(rank, length, alphabet, alpha) == pytest.approx(
            expected
        )


def test_expected_frequency_validates_rank():
    with pytest.raises(StreamError):
        expected_frequency(0, 100, 10, 2.0)
    with pytest.raises(StreamError):
        expected_frequency(11, 100, 10, 2.0)


def test_stream_is_deterministic_per_seed():
    a = zipf_stream(500, 100, 2.0, seed=5)
    b = zipf_stream(500, 100, 2.0, seed=5)
    c = zipf_stream(500, 100, 2.0, seed=6)
    assert a == b
    assert a != c


def test_stream_elements_within_alphabet():
    stream = zipf_stream(1000, 50, 1.5, seed=1)
    assert all(0 <= e < 50 for e in stream)
    assert len(stream) == 1000


def test_empirical_frequencies_track_expectation():
    length, alphabet, alpha = 20_000, 1000, 2.0
    stream = zipf_stream(length, alphabet, alpha, seed=3)
    top_count = stream.count(0)
    expected = expected_frequency(1, length, alphabet, alpha)
    assert abs(top_count - expected) < 0.15 * expected


def test_higher_alpha_is_more_skewed():
    def top_share(alpha):
        stream = zipf_stream(5000, 5000, alpha, seed=9)
        return stream.count(0) / len(stream)

    assert top_share(3.0) > top_share(2.0) > top_share(1.2)


def test_shuffle_identities_preserves_distribution_shape():
    spec = ZipfStreamSpec(5000, 500, 2.0, seed=4, shuffle_identities=True)
    stream = spec.elements()
    counts = sorted(
        np.bincount(np.asarray(stream), minlength=500), reverse=True
    )
    plain = ZipfStreamSpec(5000, 500, 2.0, seed=4).elements()
    plain_counts = sorted(
        np.bincount(np.asarray(plain), minlength=500), reverse=True
    )
    assert counts == plain_counts
    assert stream != plain


def test_spec_validation():
    with pytest.raises(StreamError):
        ZipfStreamSpec(-1, 10, 2.0)
    with pytest.raises(StreamError):
        ZipfStreamSpec(10, 0, 2.0)
    with pytest.raises(StreamError):
        ZipfStreamSpec(10, 10, -0.5)


def test_spec_is_iterable():
    spec = ZipfStreamSpec(10, 5, 2.0, seed=0)
    assert list(spec) == spec.elements()


def test_paper_scaled_spec_keeps_proportions():
    spec = paper_scaled_spec(scale=0.001, alpha=2.5)
    assert spec.length == 5000
    assert spec.alphabet == 5000
    assert spec.alpha == 2.5
    with pytest.raises(StreamError):
        paper_scaled_spec(scale=0)
