"""Unit tests for the non-zipfian stream generators."""

from collections import Counter

import pytest

from repro.errors import StreamError
from repro.workloads.generators import (
    bursty_stream,
    churn_stream,
    interleave,
    uniform_stream,
    weighted_stream,
)


def test_uniform_stream_coverage():
    stream = uniform_stream(5000, 10, seed=1)
    counts = Counter(stream)
    assert set(counts) == set(range(10))
    assert max(counts.values()) < 2 * min(counts.values())


def test_uniform_stream_validation():
    with pytest.raises(StreamError):
        uniform_stream(-1, 10)
    with pytest.raises(StreamError):
        uniform_stream(10, 0)


def test_weighted_stream_respects_weights():
    stream = weighted_stream(10_000, [0.9, 0.1], seed=2)
    counts = Counter(stream)
    assert counts[0] > 5 * counts[1]


@pytest.mark.parametrize("weights", [[], [-1.0, 2.0], [0.0, 0.0]])
def test_weighted_stream_validation(weights):
    with pytest.raises(StreamError):
        weighted_stream(10, weights)


def test_bursty_stream_has_a_dominant_element_per_burst():
    stream = bursty_stream(
        2000, alphabet=100, burst_length=500, hot_fraction=0.9, seed=3
    )
    assert len(stream) == 2000
    for start in range(0, 2000, 500):
        burst = stream[start : start + 500]
        top, top_count = Counter(burst).most_common(1)[0]
        assert top_count > 0.7 * 500


def test_bursty_stream_validation():
    with pytest.raises(StreamError):
        bursty_stream(10, 10, burst_length=0)
    with pytest.raises(StreamError):
        bursty_stream(10, 10, burst_length=5, hot_fraction=1.5)


def test_churn_stream_never_repeats_by_default():
    stream = churn_stream(100)
    assert len(set(stream)) == 100


def test_churn_stream_with_alphabet_cycles():
    stream = churn_stream(10, alphabet=3)
    assert stream == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]


def test_interleave_round_robin():
    assert interleave([[1, 1], [2, 2], [3]]) == [1, 2, 3, 1, 2]
    assert interleave([]) == []
