"""Unit and property tests for stream partitioning."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamError
from repro.workloads.partition import (
    block_partition,
    hash_partition,
    partition,
    round_robin_partition,
)

_streams = st.lists(st.integers(min_value=0, max_value=9), max_size=100)
_parts = st.integers(min_value=1, max_value=8)


def test_block_partition_contiguous():
    assert block_partition([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]


def test_block_partition_sizes_nearly_equal():
    parts = block_partition(list(range(10)), 3)
    assert [len(p) for p in parts] == [4, 3, 3]


def test_round_robin_partition():
    assert round_robin_partition([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]


def test_hash_partition_keeps_element_on_one_shard():
    parts = hash_partition([1, 2, 1, 3, 1, 2], 3)
    homes = {}
    for index, part in enumerate(parts):
        for element in part:
            assert homes.setdefault(element, index) == index


def test_partition_dispatch():
    stream = [1, 2, 3, 4]
    assert partition(stream, 2, "block") == block_partition(stream, 2)
    assert partition(stream, 2, "round_robin") == round_robin_partition(stream, 2)
    with pytest.raises(StreamError):
        partition(stream, 2, "bogus")


def test_zero_parts_rejected():
    for fn in (block_partition, round_robin_partition, hash_partition):
        with pytest.raises(StreamError):
            fn([1], 0)


@given(stream=_streams, parts=_parts)
@settings(max_examples=100, deadline=None)
def test_property_partitions_preserve_multiset(stream, parts):
    for how in ("block", "round_robin", "hash"):
        pieces = partition(stream, parts, how)
        assert len(pieces) == parts
        combined = Counter()
        for piece in pieces:
            combined.update(piece)
        assert combined == Counter(stream)


@given(stream=_streams, parts=_parts)
@settings(max_examples=100, deadline=None)
def test_property_block_sizes_balanced(stream, parts):
    sizes = [len(p) for p in block_partition(stream, parts)]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == len(stream)
