"""Unit and property tests for stream partitioning."""

import json
import os
import pathlib
import subprocess
import sys
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamError
from repro.workloads.partition import (
    block_partition,
    chunked,
    hash_partition,
    partition,
    round_robin_partition,
)

_streams = st.lists(st.integers(min_value=0, max_value=9), max_size=100)
_parts = st.integers(min_value=1, max_value=8)


def test_block_partition_contiguous():
    assert block_partition([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]


def test_block_partition_sizes_nearly_equal():
    parts = block_partition(list(range(10)), 3)
    assert [len(p) for p in parts] == [4, 3, 3]


def test_round_robin_partition():
    assert round_robin_partition([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]


def test_hash_partition_keeps_element_on_one_shard():
    parts = hash_partition([1, 2, 1, 3, 1, 2], 3)
    homes = {}
    for index, part in enumerate(parts):
        for element in part:
            assert homes.setdefault(element, index) == index


def test_partition_dispatch():
    stream = [1, 2, 3, 4]
    assert partition(stream, 2, "block") == block_partition(stream, 2)
    assert partition(stream, 2, "round_robin") == round_robin_partition(stream, 2)
    with pytest.raises(StreamError):
        partition(stream, 2, "bogus")


def test_zero_parts_rejected():
    for fn in (block_partition, round_robin_partition, hash_partition):
        with pytest.raises(StreamError):
            fn([1], 0)


@given(stream=_streams, parts=_parts)
@settings(max_examples=100, deadline=None)
def test_property_partitions_preserve_multiset(stream, parts):
    for how in ("block", "round_robin", "hash"):
        pieces = partition(stream, parts, how)
        assert len(pieces) == parts
        combined = Counter()
        for piece in pieces:
            combined.update(piece)
        assert combined == Counter(stream)


@given(stream=_streams, parts=_parts)
@settings(max_examples=100, deadline=None)
def test_property_block_sizes_balanced(stream, parts):
    sizes = [len(p) for p in block_partition(stream, parts)]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == len(stream)


# ----------------------------------------------------------------------
# Edge cases: more parts than elements, empty streams
# ----------------------------------------------------------------------
def test_more_parts_than_elements():
    for how in ("block", "round_robin", "hash"):
        pieces = partition([1, 2], 5, how)
        assert len(pieces) == 5
        combined = Counter()
        for piece in pieces:
            combined.update(piece)
        assert combined == Counter([1, 2])
        assert sum(len(piece) == 0 for piece in pieces) >= 3


def test_empty_stream_yields_empty_parts():
    for how in ("block", "round_robin", "hash"):
        assert partition([], 3, how) == [[], [], []]


def test_block_partition_parts_are_independent_lists():
    stream = [1, 2, 3, 4]
    pieces = block_partition(stream, 2)
    pieces[0].append(99)
    assert stream == [1, 2, 3, 4]
    # non-list sequences still come back as lists
    assert block_partition((1, 2, 3), 2) == [[1, 2], [3]]


# ----------------------------------------------------------------------
# chunked(): the streaming-dispatch helper
# ----------------------------------------------------------------------
def test_chunked_splits_and_preserves_order():
    assert list(chunked(range(7), 3)) == [[0, 1, 2], [3, 4, 5], [6]]
    assert list(chunked([], 3)) == []
    assert list(chunked([1], 5)) == [[1]]


def test_chunked_is_lazy():
    def gen():
        yield from range(4)
        raise AssertionError("must not be pulled past the first chunk")

    iterator = chunked(gen(), 2)
    assert next(iterator) == [0, 1]


def test_chunked_rejects_bad_size():
    with pytest.raises(StreamError):
        list(chunked([1, 2], 0))


# ----------------------------------------------------------------------
# hash_partition determinism under a pinned PYTHONHASHSEED
# ----------------------------------------------------------------------
_HASH_SNIPPET = """
import json
from repro.workloads.partition import hash_partition
stream = ["alpha", "beta", "gamma", "delta", "alpha", "beta", "epsilon"]
print(json.dumps(hash_partition(stream, 3)))
"""


def _run_pinned(hash_seed: str) -> list:
    src = pathlib.Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", _HASH_SNIPPET],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    return json.loads(output)


def test_hash_partition_deterministic_with_pinned_hashseed():
    """Same PYTHONHASHSEED -> same shard assignment across interpreter
    runs, for str elements whose hash is otherwise randomized.  (This is
    why reproducible multiprocess runs over string streams must pin the
    seed; int elements hash stably regardless.)"""
    first = _run_pinned("0")
    second = _run_pinned("0")
    assert first == second
    pinned_differently = _run_pinned("12345")
    combined = Counter()
    for piece in pinned_differently:
        combined.update(piece)
    assert combined == Counter(
        ["alpha", "beta", "gamma", "delta", "alpha", "beta", "epsilon"]
    )
