"""Property tests for the stream generators (Hypothesis).

Three families of properties, each load-bearing for the scenario suite:

* **Determinism** — the same seed must produce the identical stream.
  The scenario registry, the bench matrix and the fuzzer's shrunk
  reproducers all assume ``build(params)`` is a pure function.
* **Alphabet bounds** — background elements stay inside
  ``0 .. alphabet-1``; generators that mint fresh keys (flash crowds,
  hot-set churn) only ever mint at or above ``alphabet``.
* **Multiset preservation** — ``interleave`` reorders, never drops or
  duplicates.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generators import (
    bursty_stream,
    churn_stream,
    drift_stream,
    flash_crowd_stream,
    hot_set_churn_stream,
    interleave,
    uniform_stream,
    weighted_stream,
)

_length = st.integers(min_value=0, max_value=300)
_alphabet = st.integers(min_value=1, max_value=50)
_seed = st.integers(min_value=0, max_value=2**31 - 1)
_fraction = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------- determinism
@settings(max_examples=40, deadline=None)
@given(_length, _alphabet, st.integers(min_value=1, max_value=60),
       _fraction, _seed)
def test_bursty_stream_deterministic(length, alphabet, burst, hot, seed):
    first = bursty_stream(length, alphabet, burst, hot, seed)
    second = bursty_stream(length, alphabet, burst, hot, seed)
    assert first == second
    assert len(first) == length


@settings(max_examples=40, deadline=None)
@given(_length, st.integers(min_value=0, max_value=50))
def test_churn_stream_deterministic(length, alphabet):
    assert churn_stream(length, alphabet) == churn_stream(length, alphabet)


@settings(max_examples=40, deadline=None)
@given(_length,
       st.lists(st.floats(min_value=0.01, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=20),
       _seed)
def test_weighted_stream_deterministic(length, weights, seed):
    first = weighted_stream(length, weights, seed)
    second = weighted_stream(length, weights, seed)
    assert first == second
    assert all(0 <= e < len(weights) for e in first)


@settings(max_examples=25, deadline=None)
@given(_length, _alphabet,
       st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
       st.integers(min_value=1, max_value=10), _seed)
def test_drift_stream_deterministic_and_bounded(
    length, alphabet, a0, a1, segments, seed
):
    first = drift_stream(length, alphabet, a0, a1, segments, seed)
    second = drift_stream(length, alphabet, a0, a1, segments, seed)
    assert first == second
    assert len(first) == length
    assert all(0 <= e < alphabet for e in first)


@settings(max_examples=25, deadline=None)
@given(_length, _alphabet, st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=40), _fraction, _seed)
def test_flash_crowd_deterministic_and_key_ranges(
    length, alphabet, crowds, window, peak, seed
):
    first = flash_crowd_stream(length, alphabet, crowds, window, peak, seed)
    second = flash_crowd_stream(length, alphabet, crowds, window, peak, seed)
    assert first == second
    assert len(first) == length
    # background stays inside the alphabet; flash keys are exactly the
    # fresh ids alphabet .. alphabet+crowds-1
    assert all(
        0 <= e < alphabet or alphabet <= e < alphabet + crowds
        for e in first
    )


@settings(max_examples=25, deadline=None)
@given(_length, _alphabet, st.integers(min_value=1, max_value=8),
       _fraction, st.integers(min_value=1, max_value=50), _seed)
def test_hot_set_churn_deterministic_and_key_ranges(
    length, alphabet, hot_size, hot_fraction, rotate_every, seed
):
    first = hot_set_churn_stream(
        length, alphabet, hot_size, hot_fraction, rotate_every, seed
    )
    second = hot_set_churn_stream(
        length, alphabet, hot_size, hot_fraction, rotate_every, seed
    )
    assert first == second
    assert len(first) == length
    # hot keys are minted at alphabet and above, one per rotation
    rotations = -(-length // rotate_every) if length else 0
    ceiling = alphabet + hot_size + rotations
    assert all(0 <= e < ceiling for e in first)


@settings(max_examples=40, deadline=None)
@given(_length, _alphabet, _seed)
def test_uniform_stream_deterministic_and_bounded(length, alphabet, seed):
    first = uniform_stream(length, alphabet, seed)
    assert first == uniform_stream(length, alphabet, seed)
    assert all(0 <= e < alphabet for e in first)


# ------------------------------------------------------- alphabet bounds
@settings(max_examples=40, deadline=None)
@given(_length, _alphabet, st.integers(min_value=1, max_value=60),
       _fraction, _seed)
def test_bursty_stream_respects_alphabet(length, alphabet, burst, hot, seed):
    stream = bursty_stream(length, alphabet, burst, hot, seed)
    assert all(0 <= e < alphabet for e in stream)


@settings(max_examples=40, deadline=None)
@given(_length, st.integers(min_value=0, max_value=50))
def test_churn_stream_respects_alphabet(length, alphabet):
    stream = churn_stream(length, alphabet)
    period = alphabet if alphabet > 0 else max(1, length)
    assert all(0 <= e < period for e in stream)
    assert len(stream) == length


# --------------------------------------------------- interleave multiset
@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=0, max_value=9),
                         max_size=30),
                max_size=6))
def test_interleave_preserves_multiset(streams):
    merged = interleave(streams)
    expected = Counter()
    for stream in streams:
        expected.update(stream)
    assert Counter(merged) == expected
    assert len(merged) == sum(len(s) for s in streams)
