"""Schedule-exploration tests: distinctness, reproducibility, CLI."""

import pytest

from repro.cli import main
from repro.schedcheck.adapters import get_scheme
from repro.schedcheck.explorer import ExploreConfig, explore, run_schedule
from repro.errors import ConfigurationError

# small but real: enough stream for delegation chains, few schedules
_CONFIG = ExploreConfig(
    schedules=5, seed=0, length=400, alphabet=80, threads=4, capacity=32,
    cores=2, check_every=128,
)


@pytest.fixture(scope="module")
def reports():
    return explore(["cots", "shared", "hybrid"], _CONFIG)


def test_no_violations_on_healthy_code(reports):
    for report in reports.values():
        assert report.failures == [], report.summary_line()


def test_every_schedule_is_distinct(reports):
    for report in reports.values():
        assert report.distinct_schedules == _CONFIG.schedules


def test_perturbations_actually_happen(reports):
    # a single lock-dominated run can draw zero reorderings by chance,
    # but a whole scheme recording none means the harness is not
    # oversubscribing the cores (no waiters -> no choice points)
    for report in reports.values():
        total = sum(len(outcome.decisions) for outcome in report.outcomes)
        assert total > 0, f"{report.scheme} recorded no scheduling decisions"
    cots = reports["cots"]
    assert all(outcome.decisions for outcome in cots.outcomes)


def test_exploration_is_reproducible(reports):
    again = explore(["cots", "shared", "hybrid"], _CONFIG)
    for name, report in reports.items():
        first = [(o.trace_hash, o.ok, o.decisions) for o in report.outcomes]
        second = [
            (o.trace_hash, o.ok, o.decisions) for o in again[name].outcomes
        ]
        assert first == second


def test_full_replay_reproduces_trace_hash():
    spec = get_scheme("cots")
    stream = _CONFIG.make_stream()
    seed_key = _CONFIG.sub_seed("cots", 0)
    recorded = run_schedule(spec, stream, _CONFIG, seed_key)
    replayed = run_schedule(
        spec, stream, _CONFIG, seed_key, replay=recorded.decisions
    )
    assert replayed.trace_hash == recorded.trace_hash
    assert replayed.ok == recorded.ok


def test_seed_changes_the_schedule():
    spec = get_scheme("cots")
    stream = _CONFIG.make_stream()
    one = run_schedule(spec, stream, _CONFIG, _CONFIG.sub_seed("cots", 0))
    two = run_schedule(spec, stream, _CONFIG, _CONFIG.sub_seed("cots", 1))
    assert one.trace_hash != two.trace_hash


def test_unknown_scheme_rejected():
    with pytest.raises(ConfigurationError, match="unknown scheme"):
        get_scheme("quantum")


def test_independent_and_sequential_schemes_also_clean():
    reports = explore(
        ["independent", "sequential"],
        ExploreConfig(
            schedules=3, seed=1, length=300, alphabet=60, threads=4,
            capacity=32, cores=2, check_every=0,
        ),
    )
    for report in reports.values():
        assert report.failures == [], report.summary_line()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_clean_run_exits_zero(capsys):
    code = main(
        ["schedcheck", "--schemes", "cots", "--schedules", "3",
         "--length", "300", "--alphabet", "60", "--capacity", "32",
         "--check-every", "128"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "cots: 3 schedules, 3 distinct, 0 violations" in out


def test_cli_rejects_unknown_scheme(capsys):
    with pytest.raises(ConfigurationError):
        main(["schedcheck", "--schemes", "nope", "--schedules", "1"])
