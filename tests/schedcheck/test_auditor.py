"""Unit tests for the shared invariant auditor.

Each test hand-builds a structure that violates exactly one guarantee
and checks the auditor rejects it with a message naming the violation
(and the scheme), while the healthy version of the same structure
passes.
"""

import dataclasses

import pytest

from repro.core.counters import CounterEntry
from repro.core.space_saving import SpaceSaving
from repro.cots.framework import CoTSRunConfig, run_cots
from repro.errors import AuditError, ProtocolError
from repro.schedcheck.auditor import (
    EXACT,
    HYBRID,
    MERGED,
    Tolerance,
    audit_concurrent_summary,
    audit_counts,
    audit_differential,
    audit_space_saving,
    exact_counts,
)

_STREAM = ["a"] * 10 + ["b"] * 5 + ["c"] * 1  # N=16; with m=4, N/m=4


def _counter(*entries, capacity=4, processed=None):
    total = sum(count for _, count, _ in entries)
    return SpaceSaving.from_entries(
        capacity,
        [CounterEntry(element, count, error) for element, count, error in entries],
        total if processed is None else processed,
    )


def test_audit_error_is_a_protocol_error():
    assert issubclass(AuditError, ProtocolError)


def test_healthy_counter_passes_exact():
    counter = SpaceSaving(capacity=4)
    counter.process_many(_STREAM)
    audit_space_saving(counter, "test")
    audit_counts(counter, _STREAM, "test", EXACT)
    audit_differential(counter, _STREAM, "test", EXACT)


def test_conservation_violation():
    counter = _counter(("a", 10, 0), ("b", 4, 0))  # one "b" went missing
    with pytest.raises(AuditError, match=r"\[test\] count conservation"):
        audit_counts(counter, _STREAM, "test", EXACT)


def test_total_must_never_exceed_stream_length():
    counter = _counter(("a", 20, 0), ("b", 5, 0))
    no_conserve = dataclasses.replace(EXACT, conserve=False)
    with pytest.raises(AuditError, match="exceeds stream length"):
        audit_counts(counter, _STREAM, "test", no_conserve)


def test_undercount_violation():
    # 'b' and 'c' are within every EXACT bound; 'a' lost 4 occurrences
    counter = _counter(("a", 6, 0), ("b", 9, 4), ("c", 1, 0))
    with pytest.raises(AuditError, match="undercount: 'a'"):
        audit_counts(counter, _STREAM, "test", EXACT)


def test_merged_band_allows_undercount_within_error():
    # 'a' undercounts by 5 but carries error 5: fine for merged summaries,
    # a protocol violation for exact ones
    counter = _counter(("a", 5, 5), ("b", 9, 4), ("c", 2, 1))
    merged_no_conserve = dataclasses.replace(
        MERGED, under_factor=0.0, over_factor=2.0
    )
    audit_counts(counter, _STREAM, "test", merged_no_conserve)
    with pytest.raises(AuditError, match="undercount"):
        audit_counts(counter, _STREAM, "test", EXACT)


def test_guaranteed_count_bound():
    # count 16 with error 1 guarantees 15 > true 10: impossible for any
    # conserving upper-bound summary
    counter = _counter(("a", 16, 1), processed=16, capacity=4)
    with pytest.raises(AuditError, match="error bound: 'a'"):
        audit_counts(counter, _STREAM, "test", EXACT)


def test_overcount_violation():
    counter = _counter(("a", 15, 15), ("b", 1, 0))
    no_conserve = dataclasses.replace(
        EXACT, conserve=False, under_factor=10.0, guaranteed_factor=10.0
    )
    with pytest.raises(AuditError, match="overcount: 'a'"):
        audit_counts(counter, _STREAM, "test", no_conserve)


def test_missing_heavy_hitter():
    # 'a' (true 10 > N/m + 1 = 5) is not monitored at all
    counter = _counter(("b", 5, 0), ("c", 1, 0), ("d", 10, 10))
    relaxed = dataclasses.replace(
        EXACT, conserve=False, under_factor=10.0, over_factor=10.0,
        guaranteed_factor=10.0,
    )
    with pytest.raises(AuditError, match="missing heavy hitter: 'a'"):
        audit_counts(counter, _STREAM, "test", relaxed)


def test_min_count_above_epsilon_is_caught():
    # all four counters above N/m=4 forces total > N, which the
    # conservation ceiling catches before the epsilon bound even runs
    counter = _counter(
        ("a", 5, 5), ("b", 5, 5), ("c", 5, 5), ("d", 5, 5), processed=16
    )
    relaxed = dataclasses.replace(
        EXACT, conserve=False, under_factor=10.0, over_factor=10.0,
        guaranteed_factor=10.0,
    )
    with pytest.raises(AuditError, match="exceeds stream length"):
        audit_counts(counter, _STREAM, "test", relaxed)


def test_negative_error_rejected_structurally():
    counter = _counter(("a", 10, -1), ("b", 5, 0), ("c", 1, 0))
    with pytest.raises(AuditError, match="outside"):
        audit_space_saving(counter, "test")


def test_error_above_count_allowed_only_for_merged():
    counter = _counter(("a", 10, 0), ("b", 5, 0), ("c", 1, 3))
    with pytest.raises(AuditError, match="outside"):
        audit_space_saving(counter, "test")
    audit_space_saving(counter, "test", merged=True)


def test_differential_catches_divergence():
    # slack for EXACT is (1+1)*N/m = 8; 'b' drifts by 9
    drifted = _counter(("a", 1, 0), ("b", 14, 0), ("c", 1, 0))
    with pytest.raises(AuditError, match="differential"):
        audit_differential(drifted, _STREAM, "test", EXACT)


def test_tolerance_presets_are_distinct():
    assert EXACT.kind == "upper" and EXACT.conserve
    assert MERGED.kind == "merged" and not MERGED.conserve
    assert HYBRID.conserve and HYBRID.under_factor == 4.0
    assert isinstance(EXACT, Tolerance)


def test_exact_counts_matches_manual():
    assert exact_counts(_STREAM) == {"a": 10, "b": 5, "c": 1}


# ----------------------------------------------------------------------
# Concurrent summary structure corruption
# ----------------------------------------------------------------------
def _fresh_summary():
    result = run_cots(
        ["x"] * 6 + ["y"] * 3 + ["z"] * 2,
        CoTSRunConfig(threads=2, capacity=4),
    )
    return result.extras["framework"].summary


def test_healthy_concurrent_summary_passes():
    audit_concurrent_summary(_fresh_summary(), scheme="cots")


def test_detects_nonmonotonic_bucket_chain():
    summary = _fresh_summary()
    bucket = summary.min_bucket
    bucket.freq = 10 ** 9  # now >= its successor
    for node in bucket.members:  # keep nodes consistent with the bucket
        node.freq = bucket.freq
    with pytest.raises(AuditError, match=r"\[cots\]"):
        audit_concurrent_summary(summary, scheme="cots")


def test_detects_node_frequency_mismatch():
    summary = _fresh_summary()
    bucket = summary.min_bucket
    node = next(iter(bucket.members))
    node.freq += 1
    with pytest.raises(AuditError):
        audit_concurrent_summary(summary, scheme="cots")


def test_detects_dangling_node_bucket_pointer():
    summary = _fresh_summary()
    bucket = summary.min_bucket
    node = next(iter(bucket.members))
    node.bucket = None
    with pytest.raises(AuditError):
        audit_concurrent_summary(summary, scheme="cots")


def test_detects_undrained_queue_at_quiescence():
    summary = _fresh_summary()
    summary.min_bucket.queue.append(object())
    with pytest.raises(AuditError, match="undrained"):
        audit_concurrent_summary(summary, scheme="cots")
    # ... but mid-run a pending request is normal
    audit_concurrent_summary(summary, mid_run=True, scheme="cots")
