"""Unit tests for the scheduling perturber and cost jitter."""

import pytest

from repro.errors import ConfigurationError
from repro.schedcheck.perturb import (
    PICK,
    PREEMPT,
    PREEMPT_TAGS,
    Decision,
    SchedulePerturber,
    jittered_costs,
)
from repro.simcore.atomics import AtomicCell
from repro.simcore.costs import CostModel
from repro.simcore.effects import AtomicOp, Compute


def _drive(perturber, picks=40, preempts=40):
    """Feed a fixed synthetic opportunity sequence, return the choices."""
    cell = AtomicCell(0)
    choices = []
    for i in range(picks):
        choices.append(("pick", perturber.pick_waiter(pending=3 + i % 3)))
    for i in range(preempts):
        effect = AtomicOp(cell, "add", 1) if i % 2 else Compute(5, tag="bucket")
        choices.append(("preempt", perturber.force_preempt(effect)))
    return choices


def test_same_seed_same_decisions():
    a = SchedulePerturber(seed="k1", reorder_p=0.5, preempt_p=0.5)
    b = SchedulePerturber(seed="k1", reorder_p=0.5, preempt_p=0.5)
    assert _drive(a) == _drive(b)
    assert a.decisions == b.decisions
    assert a.decisions  # with p=0.5 over 80 opportunities, never empty


def test_different_seeds_differ():
    a = SchedulePerturber(seed="k1", reorder_p=0.5, preempt_p=0.5)
    b = SchedulePerturber(seed="k2", reorder_p=0.5, preempt_p=0.5)
    assert _drive(a) != _drive(b)


def test_full_replay_reproduces_choices():
    recorder = SchedulePerturber(seed=7, reorder_p=0.5, preempt_p=0.5)
    recorded_choices = _drive(recorder)
    replayer = SchedulePerturber(seed=999, replay=recorder.decisions)
    assert _drive(replayer) == recorded_choices


def test_empty_replay_is_the_default_schedule():
    replayer = SchedulePerturber(seed=7, replay=[])
    choices = _drive(replayer)
    assert all(
        choice in (("pick", 0), ("preempt", False)) for choice in choices
    )
    assert replayer.decisions == []


def test_replay_consumes_no_rng():
    """Replay must be schedule-independent of the perturber's own seed."""
    one = _drive(SchedulePerturber(seed=1, replay=[Decision(PICK, 3, 1)]))
    two = _drive(SchedulePerturber(seed=2, replay=[Decision(PICK, 3, 1)]))
    assert one == two


def test_replay_offset_clamped_to_queue():
    replayer = SchedulePerturber(replay=[Decision(PICK, 0, 10)])
    assert replayer.pick_waiter(pending=2) == 1  # 10 clamped to pending-1


def test_preemption_only_at_interesting_effects():
    perturber = SchedulePerturber(seed=0, preempt_p=1.0)
    assert not perturber.force_preempt(Compute(5, tag="rest"))
    assert perturber.opportunities[PREEMPT] == 0  # not even an opportunity
    assert perturber.force_preempt(Compute(5, tag="bucket"))
    assert perturber.force_preempt(AtomicOp(AtomicCell(0), "load"))
    assert perturber.opportunities[PREEMPT] == 2
    assert {d.kind for d in perturber.decisions} == {PREEMPT}
    assert "bucket" in PREEMPT_TAGS


def test_probability_validation():
    with pytest.raises(ConfigurationError):
        SchedulePerturber(reorder_p=1.5)
    with pytest.raises(ConfigurationError):
        SchedulePerturber(preempt_p=-0.1)


def test_decision_rendering():
    assert str(Decision(PICK, 4, 2)) == "pick[4] -> waiter+2"
    assert str(Decision(PREEMPT, 9)) == "preempt[9]"


def test_jittered_costs_deterministic_and_positive():
    base = CostModel()
    once = jittered_costs(base, "s1", spread=0.3)
    again = jittered_costs(base, "s1", spread=0.3)
    assert once == again
    assert once != jittered_costs(base, "s2", spread=0.3)
    import dataclasses

    for field in dataclasses.fields(once):
        assert getattr(once, field.name) >= 1


def test_jittered_costs_spread_zero_is_identity():
    base = CostModel()
    assert jittered_costs(base, "s1", spread=0.0) is base


def test_jittered_costs_spread_validation():
    with pytest.raises(ConfigurationError):
        jittered_costs(CostModel(), "s1", spread=1.0)
    with pytest.raises(ConfigurationError):
        jittered_costs(CostModel(), "s1", spread=-0.2)
