"""Delta debugging and mutation self-tests.

The harness only earns trust by catching bugs it was *not* tuned on:
each mutation re-introduces one realistic delegation-protocol mistake
(double relinquish counting, dropped queue transfer, skipped GC mark)
and the explorer must flag it, after which the shrinker must reduce the
failing schedule to a small reproducer.
"""

import pytest

from repro.cli import main
from repro.schedcheck.adapters import get_scheme
from repro.schedcheck.explorer import ExploreConfig, run_schedule
from repro.schedcheck.mutations import MUTATIONS, get_mutation
from repro.schedcheck.shrink import ddmin, shrink_outcome
from repro.errors import ConfigurationError

# churn-heavy: small capacity + low skew keeps the min bucket busy, so
# the queue-transfer and GC paths actually execute
_MUTATION_CONFIG = ExploreConfig(
    schedules=1, seed=3, length=800, alphabet=400, alpha=0.9, threads=8,
    capacity=32, cores=2, check_every=256, preempt_p=0.25,
)


# ----------------------------------------------------------------------
# ddmin on synthetic predicates
# ----------------------------------------------------------------------
def test_ddmin_finds_the_two_guilty_items():
    items = list(range(20))

    def still_fails(subset):
        return 3 in subset and 17 in subset

    assert ddmin(items, still_fails) == [3, 17]


def test_ddmin_single_guilty_item():
    assert ddmin(list(range(50)), lambda s: 42 in s) == [42]


def test_ddmin_prefers_the_empty_list():
    calls = []

    def always_fails(subset):
        calls.append(len(subset))
        return True

    assert ddmin(list(range(10)), always_fails) == []
    assert calls == [0]  # tested the empty list first, then stopped


def test_ddmin_keeps_order():
    items = list(range(30))

    def still_fails(subset):
        return all(x in subset for x in (5, 12, 25))

    assert ddmin(items, still_fails) == [5, 12, 25]


def test_ddmin_budget_cap_returns_best_so_far():
    items = list(range(64))
    result = ddmin(items, lambda s: len(s) >= 32, max_tests=5)
    assert 32 <= len(result) <= 64


# ----------------------------------------------------------------------
# Mutation self-tests (the acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutation_is_caught_and_shrunk(name):
    spec = get_scheme("cots")
    stream = _MUTATION_CONFIG.make_stream()
    patch = get_mutation(name)
    outcome = run_schedule(
        spec, stream, _MUTATION_CONFIG,
        _MUTATION_CONFIG.sub_seed("cots", 0), patch=patch,
    )
    assert not outcome.ok, f"mutation {name} went undetected"
    result = shrink_outcome(
        spec, stream, _MUTATION_CONFIG, outcome, patch=patch, max_tests=60
    )
    assert len(result.decisions) <= 20
    assert not result.minimal.ok
    rendered = result.render()
    assert "schedcheck reproducer" in rendered
    assert result.minimal.error_type in rendered


def test_healthy_run_under_mutation_config_is_clean():
    """The churn-heavy config itself must not false-positive."""
    spec = get_scheme("cots")
    stream = _MUTATION_CONFIG.make_stream()
    outcome = run_schedule(
        spec, stream, _MUTATION_CONFIG, _MUTATION_CONFIG.sub_seed("cots", 0)
    )
    assert outcome.ok, outcome.error


def test_unknown_mutation_rejected():
    with pytest.raises(ConfigurationError, match="unknown mutation"):
        get_mutation("off-by-one")


def test_cli_mutation_run_is_caught(capsys):
    code = main(
        ["schedcheck", "--schemes", "cots", "--schedules", "1",
         "--seed", "3", "--length", "800", "--alphabet", "400",
         "--alpha", "0.9", "--threads", "8", "--capacity", "32",
         "--check-every", "256", "--mutate", "double-relinquish"]
    )
    out = capsys.readouterr().out
    assert code == 0  # mutation detected: the harness did its job
    assert "mutation active" in out
    assert "schedcheck reproducer" in out


# ----------------------------------------------------------------------
# reproducer trace export (--trace-dir)
# ----------------------------------------------------------------------
def test_shrink_result_exports_chrome_trace(tmp_path):
    import json

    from repro.obs import validate_chrome_trace

    spec = get_scheme("cots")
    stream = _MUTATION_CONFIG.make_stream()
    patch = get_mutation("drop-queue-transfer")
    outcome = run_schedule(
        spec, stream, _MUTATION_CONFIG,
        _MUTATION_CONFIG.sub_seed("cots", 0), patch=patch,
    )
    assert not outcome.ok
    result = shrink_outcome(
        spec, stream, _MUTATION_CONFIG, outcome, patch=patch, max_tests=60
    )
    assert result.recorder is not None
    path = tmp_path / "reproducer.json"
    spans = result.write_chrome_trace(str(path))
    assert spans > 0
    doc = json.loads(path.read_text())
    validate_chrome_trace(doc)
    other = doc["otherData"]
    assert other["mode"] == "schedcheck"
    assert other["scheme"] == "cots"
    assert other["violation"].startswith(result.minimal.error_type)
    assert other["decisions"] == [str(d) for d in result.decisions]


def test_shrink_result_without_recorder_refuses_export(tmp_path):
    from repro.schedcheck.shrink import ShrinkResult

    spec = get_scheme("cots")
    stream = _MUTATION_CONFIG.make_stream()
    outcome = run_schedule(
        spec, stream, _MUTATION_CONFIG, _MUTATION_CONFIG.sub_seed("cots", 0)
    )
    bare = ShrinkResult(original=outcome, minimal=outcome, runs=0)
    with pytest.raises(ValueError, match="no trace recorder"):
        bare.write_chrome_trace(str(tmp_path / "x.json"))


def test_cli_trace_dir_writes_reproducer_trace(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace

    trace_dir = tmp_path / "traces"
    code = main(
        ["schedcheck", "--schemes", "cots", "--schedules", "1",
         "--seed", "3", "--length", "800", "--alphabet", "400",
         "--alpha", "0.9", "--threads", "8", "--capacity", "32",
         "--check-every", "256", "--mutate", "drop-queue-transfer",
         "--trace-dir", str(trace_dir)]
    )
    out = capsys.readouterr().out
    assert code == 0
    trace_path = trace_dir / "cots-reproducer.json"
    assert f"reproducer trace: {trace_path}" in out
    validate_chrome_trace(json.loads(trace_path.read_text()))
