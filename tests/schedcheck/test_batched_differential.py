"""Batched fast lanes vs per-element processing under perturbed schedules.

The batched lanes (``SpaceSaving.process_many`` and the CoTS
pre-aggregated bulk delegations) are pure optimizations: under any
schedule the perturber can produce, their answers must stay equivalent
to the per-element paths — exactly equal for the sequential structure,
within the paper's error bounds for the concurrent framework.
"""

import pytest

from repro.core.space_saving import SpaceSaving
from repro.schedcheck.adapters import HarnessParams, get_scheme
from repro.schedcheck.auditor import EXACT, audit_counts, audit_differential
from repro.schedcheck.explorer import ExploreConfig, run_schedule
from repro.schedcheck.perturb import SchedulePerturber, jittered_costs
from repro.simcore.engine import Engine
from repro.workloads import zipf_stream

_CONFIG = ExploreConfig(
    schedules=1, seed=0, length=500, alphabet=100, threads=4, capacity=32,
    cores=2, check_every=256,
)


def _perturbed_result(scheme, stream, seed_key):
    """One perturbed run of ``scheme``, returning the driver result."""
    spec = get_scheme(scheme)
    costs = jittered_costs(_CONFIG.costs, seed_key, _CONFIG.jitter)
    perturber = SchedulePerturber(
        seed_key, _CONFIG.reorder_p, _CONFIG.preempt_p
    )
    params = HarnessParams(
        threads=_CONFIG.threads,
        capacity=_CONFIG.capacity,
        machine=_CONFIG.machine(),
        costs=costs,
        engine_factory=lambda machine, costs_: Engine(
            machine=machine, costs=costs_, sched_policy=perturber
        ),
    )
    return spec.run(stream, params)


@pytest.mark.parametrize("index", [0, 1, 2])
def test_preaggregated_cots_matches_per_element(index):
    """Same perturbed seed, batched vs per-element delegation lanes."""
    stream = _CONFIG.make_stream()
    seed_key = f"batchdiff:{index}"
    plain = _perturbed_result("cots", stream, seed_key)
    batched = _perturbed_result("cots-pre", stream, seed_key)
    # both lanes conserve and obey the exact-tolerance bounds...
    audit_counts(plain.counter, stream, "cots", EXACT)
    audit_counts(batched.counter, stream, "cots-pre", EXACT)
    # ...and they differ from *each other* by at most the two over-
    # estimation budgets (differential with the sibling as reference)
    audit_differential(
        batched.counter, stream, "cots-pre", EXACT,
        reference=plain.counter,
    )


@pytest.mark.parametrize("index", [0, 1])
def test_preaggregated_cots_passes_full_schedcheck(index):
    """The cots-pre lane survives the complete audited run_schedule."""
    stream = _CONFIG.make_stream()
    outcome = run_schedule(
        get_scheme("cots-pre"), stream, _CONFIG,
        _CONFIG.sub_seed("cots-pre", index), index=index,
    )
    assert outcome.ok, outcome.error
    assert outcome.decisions  # the schedule really was perturbed


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_process_many_identical_to_per_element(seed):
    """The structure-level bulk lane is bit-identical to the loop."""
    stream = zipf_stream(2000, 300, 1.4, seed=seed)
    loop = SpaceSaving(capacity=48)
    for element in stream:
        loop.process(element)
    bulk = SpaceSaving(capacity=48)
    bulk.process_many(stream)
    assert bulk.processed == loop.processed
    state = lambda c: sorted(
        (e.element, e.count, e.error) for e in c.entries()
    )
    assert state(bulk) == state(loop)


def test_process_many_chunking_is_invariant():
    """Feeding the same stream in odd-sized chunks changes nothing."""
    stream = zipf_stream(1500, 200, 2.0, seed=9)
    whole = SpaceSaving(capacity=32)
    whole.process_many(stream)
    chunked = SpaceSaving(capacity=32)
    i = 0
    for size in [1, 7, 64, 501, 13]:
        while i < len(stream):
            chunked.process_many(stream[i : i + size])
            i += size
    assert sorted(
        (e.element, e.count, e.error) for e in whole.entries()
    ) == sorted((e.element, e.count, e.error) for e in chunked.entries())
