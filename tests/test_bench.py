"""Smoke tests for the pinned benchmark harness."""

import json

import pytest

from repro import bench
from repro.errors import ConfigurationError

#: a micro scale so the suite runs in seconds under pytest
_MICRO = {
    "hot_length": 3_000,
    "sim_length": 600,
    "alphabet": 300,
    "capacity": 32,
    "threads": 4,
    "alpha": 2.0,
    "seed": 7,
    "repeats": 1,
}


@pytest.fixture
def micro_scale(monkeypatch):
    monkeypatch.setitem(bench.SCALES, "tiny", _MICRO)


def test_run_suite_rejects_unknown_scale():
    with pytest.raises(ConfigurationError):
        bench.run_suite("huge")


def test_suite_report_shape_and_results(micro_scale, tmp_path):
    report = bench.run_suite("tiny")
    assert report["schema_version"] == bench.SCHEMA_VERSION
    assert report["suite"] == "core"
    assert report["scale"] == "tiny"
    names = [entry["name"] for entry in report["results"]]
    assert names == [
        "sequential-hot-path-per-element",
        "sequential-hot-path-batched",
        "sequential",
        "sequential-batched",
        "shared-mutex",
        "shared-spin",
        "independent-serial",
        "hybrid",
        "cots",
        "cots-preagg",
    ]
    batched = report["results"][1]
    assert batched["identical_results"] is True
    assert batched["speedup_vs_per_element"] > 0
    for entry in report["results"]:
        assert entry["wall_seconds"] > 0
        if entry["kind"] == "simulated":
            assert entry["sim_cycles"] > 0
            assert entry["sim_throughput_eps"] > 0
            assert entry["wall_throughput_eps"] > 0

    out = tmp_path / "BENCH_core.json"
    bench.write_report(report, out)
    parsed = json.loads(out.read_text())
    assert parsed["results"][0]["name"] == "sequential-hot-path-per-element"

    text = bench.format_report(report)
    assert "sequential-hot-path-batched" in text
    assert "cots-preagg" in text


def test_cli_bench_writes_report(micro_scale, tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "bench.json"
    assert main(["bench", "--scale", "tiny", "--output", str(out)]) == 0
    parsed = json.loads(out.read_text())
    assert parsed["suite"] == "core"
    captured = capsys.readouterr()
    assert "wrote" in captured.out
