"""Smoke tests for the pinned benchmark harness."""

import json

import pytest

from repro import bench
from repro.errors import ConfigurationError

#: a micro scale so the suite runs in seconds under pytest
_MICRO = {
    "hot_length": 3_000,
    "sim_length": 600,
    "alphabet": 300,
    "capacity": 32,
    "threads": 4,
    "alpha": 2.0,
    "seed": 7,
    "repeats": 1,
}


#: a micro mp scale: 2 workers, small stream, single repeat
_MICRO_MP = {
    "mp_length": 4_000,
    "alphabet": 500,
    "capacity": 64,
    "chunk_elements": 512,
    "workers": [1, 2],
    "alpha": 1.1,
    "seed": 7,
    "repeats": 1,
    "timeout": 60.0,
}


#: a micro scenario scale: one short stream per scenario, 2 workers
_MICRO_SCENARIOS = {
    "length": 1_200,
    "alphabet": 200,
    "capacity": 32,
    "k": 8,
    "threads": 2,
    "workers": 2,
    "chunk_elements": 256,
    "seed": 7,
    "timeout": 60.0,
}


#: a micro sketch scale: short stream, small table, 2 workers max
_MICRO_SKETCH = {
    "length": 4_000,
    "alphabet": 400,
    "alpha": 1.1,
    "capacity": 48,
    "chunk_elements": 512,
    "workers": [1, 2],
    "epsilon": 0.01,
    "delta": 0.05,
    "sketch_seed": 13,
    "cs_width": 256,
    "cs_depth": 5,
    "seed": 7,
    "repeats": 1,
    "timeout": 60.0,
}


@pytest.fixture
def micro_scale(monkeypatch):
    monkeypatch.setitem(bench.SCALES, "tiny", _MICRO)


@pytest.fixture
def micro_mp_scale(monkeypatch):
    monkeypatch.setitem(bench.MP_SCALES, "tiny", _MICRO_MP)


@pytest.fixture
def micro_scenario_scale(monkeypatch):
    monkeypatch.setitem(bench.SCENARIO_SCALES, "tiny", _MICRO_SCENARIOS)


@pytest.fixture
def micro_sketch_scale(monkeypatch):
    monkeypatch.setitem(bench.SKETCH_SCALES, "tiny", _MICRO_SKETCH)


def test_run_suite_rejects_unknown_scale():
    with pytest.raises(ConfigurationError):
        bench.run_suite("huge")


def test_run_suite_rejects_unknown_suite():
    with pytest.raises(ConfigurationError):
        bench.run_suite("tiny", suite="gpu")


def test_suite_report_shape_and_results(micro_scale, tmp_path):
    report = bench.run_suite("tiny")
    assert report["schema_version"] == bench.SCHEMA_VERSION
    assert report["suite"] == "core"
    assert report["scale"] == "tiny"
    names = [entry["name"] for entry in report["results"]]
    assert names == [
        "sequential-hot-path-per-element",
        "sequential-hot-path-batched",
        "sequential",
        "sequential-batched",
        "shared-mutex",
        "shared-spin",
        "independent-serial",
        "hybrid",
        "cots",
        "cots-preagg",
    ]
    batched = report["results"][1]
    assert batched["identical_results"] is True
    assert batched["speedup_vs_per_element"] > 0
    for entry in report["results"]:
        assert entry["wall_seconds"] > 0
        assert entry["peak_rss_kb"] > 0
        if entry["kind"] == "simulated":
            assert entry["sim_cycles"] > 0
            assert entry["sim_throughput_eps"] > 0
            assert entry["wall_throughput_eps"] > 0

    out = tmp_path / "BENCH_core.json"
    bench.write_report(report, out)
    parsed = json.loads(out.read_text())
    assert parsed["results"][0]["name"] == "sequential-hot-path-per-element"

    text = bench.format_report(report)
    assert "sequential-hot-path-batched" in text
    assert "cots-preagg" in text


def test_core_suite_entries_embed_metrics(micro_scale):
    report = bench.run_suite("tiny")
    for entry in report["results"]:
        snap = entry["metrics"]
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] or snap["gauges"] or snap["histograms"]
    by_name = {entry["name"]: entry["metrics"] for entry in report["results"]}
    # the hot-path and sequential entries carry the Space Saving op mix,
    # with real traffic on the increment and overwrite counters
    for name in (
        "sequential-hot-path-per-element",
        "sequential-hot-path-batched",
        "sequential",
        "sequential-batched",
    ):
        counters = by_name[name]["counters"]
        assert counters["core.spacesaving.increments"] > 0
    # the hot-path stream overflows its capacity, so evictions must show
    for name in (
        "sequential-hot-path-per-element",
        "sequential-hot-path-batched",
    ):
        assert by_name[name]["counters"]["core.spacesaving.overwrites"] > 0
    # both hot-path lanes agree on the semantic (lane-independent) ops
    per_element = by_name["sequential-hot-path-per-element"]["counters"]
    batched = by_name["sequential-hot-path-batched"]["counters"]
    for key in (
        "core.spacesaving.occurrences",
        "core.spacesaving.inserts",
        "core.spacesaving.overwrites",
    ):
        assert per_element[key] == batched[key]
    # simulated entries carry the simulator accounts; CoTS adds protocol
    for name in ("cots", "cots-preagg"):
        snap = by_name[name]
        assert snap["gauges"]["sim.makespan_cycles"] > 0
        assert snap["counters"]["cots.stats.delegations"] >= 0
        assert any(
            key.startswith("sim.busy_cycles.") for key in snap["counters"]
        )


def test_report_command_reads_bench_output(micro_scale, tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_core.json"
    bench.write_report(bench.run_suite("tiny"), out)
    assert main(["report", str(out), "--entry", "hot-path"]) == 0
    text = capsys.readouterr().out
    assert "core.spacesaving.increments" in text
    assert main(["report", str(out), "--json"]) == 0
    machine = json.loads(capsys.readouterr().out)
    original = json.loads(out.read_text())
    assert [e["metrics"] for e in machine["entries"]] == [
        e["metrics"] for e in original["results"]
    ]


def test_cli_bench_writes_report(micro_scale, tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "bench.json"
    assert main(["bench", "--scale", "tiny", "--output", str(out)]) == 0
    parsed = json.loads(out.read_text())
    assert parsed["suite"] == "core"
    captured = capsys.readouterr()
    assert "wrote" in captured.out


def test_mp_suite_report_shape(micro_mp_scale):
    report = bench.run_suite("tiny", suite="mp")
    assert report["suite"] == "mp"
    assert report["host_cores"] >= 1
    names = [entry["name"] for entry in report["results"]]
    assert names == [
        "mp-sequential-batched",
        "mp-sharded-1w",
        "mp-sharded-1w-pickle",
        "mp-sharded-2w",
        "mp-sharded-2w-pickle",
    ]
    baseline = report["results"][0]
    assert baseline["kind"] == "wallclock"
    assert baseline["peak_rss_kb"] > 0
    for entry in report["results"][1:]:
        assert entry["kind"] == "mp"
        assert entry["workers"] in (1, 2)
        assert entry["transport"] == (
            "pickle" if entry["name"].endswith("-pickle") else "shm"
        )
        assert entry["wall_seconds"] > 0
        assert entry["startup_seconds"] > 0
        assert entry["speedup_vs_sequential"] > 0
        assert entry["equivalent"] is True
        assert entry["partition_how"] == "hash"
        assert entry["peak_rss_kb"] > 0

    text = bench.format_report(report)
    assert "mp-sharded-2w" in text
    assert "host_cores" in text
    assert "equivalent=True" in text


def test_mp_suite_entries_embed_metrics(micro_mp_scale):
    report = bench.run_suite("tiny", suite="mp")
    by_name = {entry["name"]: entry["metrics"] for entry in report["results"]}
    baseline = by_name["mp-sequential-batched"]["counters"]
    assert baseline["core.spacesaving.increments"] > 0
    assert baseline["core.spacesaving.occurrences"] == _MICRO_MP["mp_length"]
    for workers in (1, 2):
        snap = by_name[f"mp-sharded-{workers}w"]
        counters = snap["counters"]
        assert counters["mp.dispatched.items"] == _MICRO_MP["mp_length"]
        assert counters["mp.dispatched.batches"] > 0
        assert snap["histograms"]["mp.merge.seconds"]["count"] == 1
        assert any(
            name.endswith(".items_per_sec") for name in snap["gauges"]
        )


def test_scenario_suite_report_shape(micro_scenario_scale):
    from repro.scenarios import BACKENDS, SCENARIOS

    report = bench.run_suite("tiny", suite="scenarios")
    assert report["suite"] == "scenarios"
    assert report["schema_version"] == bench.SCHEMA_VERSION
    expected = [
        f"{name}-{backend}"
        for name in SCENARIOS
        for backend in BACKENDS
    ]
    assert [e["name"] for e in report["results"]] == expected
    assert len({e["scenario"] for e in report["results"]}) >= 5
    assert len({e["backend"] for e in report["results"]}) >= 3
    for entry in report["results"]:
        assert entry["kind"] == "scenario"
        assert entry["elements"] == _MICRO_SCENARIOS["length"]
        assert entry["k"] == _MICRO_SCENARIOS["k"]
        assert 0.0 <= entry["recall_at_k"] <= 1.0
        assert entry["max_overestimate"] <= entry["error_bound"] + 1e-9
        assert entry["guarantee_violations"] == 0
        assert entry["bound_excess"] == 0.0
        assert entry["wall_seconds"] > 0
        assert entry["throughput_eps"] > 0
        assert entry["metrics"]["gauges"][
            "scenario.accuracy.recall_at_k"
        ] == entry["recall_at_k"]

    text = bench.format_report(report)
    assert "eviction-poison-sequential" in text
    assert f"recall@{_MICRO_SCENARIOS['k']}=" in text


def test_scenario_smoke_scale_is_registered():
    # the CI lane runs --scale smoke; it must resolve for all suites
    for scales in (bench.SCALES, bench.MP_SCALES, bench.SCENARIO_SCALES,
                   bench.SKETCH_SCALES):
        assert "smoke" in scales


def test_sketch_suite_report_shape(micro_sketch_scale):
    report = bench.run_suite("tiny", suite="sketch")
    assert report["suite"] == "sketch"
    assert report["host_cores"] >= 1
    names = [entry["name"] for entry in report["results"]]
    assert names == [
        "sketch-cm-scalar-per-element",
        "sketch-cm-scalar-preagg",
        "sketch-cm-vectorized",
        "sketch-countsketch-vectorized",
        "sketch-one-table-w1",
        "sketch-one-table-w2",
    ]
    by_name = {entry["name"]: entry for entry in report["results"]}
    for lane in ("sketch-cm-scalar-preagg", "sketch-cm-vectorized"):
        entry = by_name[lane]
        assert entry["kind"] == "wallclock"
        assert entry["identical_results"] is True
        assert entry["speedup_vs_per_element"] > 0
    for entry in report["results"]:
        assert entry["wall_seconds"] > 0
        assert entry["peak_rss_kb"] > 0
    rungs = [e for e in report["results"] if e["kind"] == "sketch-mp"]
    assert [e["workers"] for e in rungs] == [1, 2]
    for rung in rungs:
        assert rung["bound_compliant"] is True
        assert rung["max_underestimate"] == 0
        assert rung["snapshot_seconds"] > 0
        assert rung["peek_seconds"] > 0
        assert rung["sharded_merge_seconds"] > 0
        assert rung["snapshot_ratio_vs_sharded"] > 0
        assert rung["max_band_bound"] >= 0
        counters = rung["metrics"]["counters"]
        assert counters["sketch.updates"] > 0
        # one shared table: w-1 private tables never shipped or folded
        if rung["workers"] > 1:
            assert counters["backend.merge_avoided.bytes"] > 0

    text = bench.format_report(report)
    assert "sketch-one-table-w2" in text
    assert "bound_compliant=True" in text


def test_sketch_vectorized_entry_embeds_sketch_metrics(micro_sketch_scale):
    report = bench.run_suite("tiny", suite="sketch")
    by_name = {e["name"]: e["metrics"] for e in report["results"]}
    snap = by_name["sketch-cm-vectorized"]
    # updates are pre-aggregated: distinct keys per batch, not occurrences
    assert 0 < snap["counters"]["sketch.updates"] <= _MICRO_SKETCH["length"]
    assert snap["counters"]["backend.ingest.items"] == _MICRO_SKETCH["length"]
    assert 0.0 < snap["gauges"]["sketch.table.occupancy"] <= 1.0


def test_cli_bench_scenarios_default_output(
    micro_scenario_scale, tmp_path, capsys, monkeypatch
):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--suite", "scenarios", "--scale", "tiny"]) == 0
    parsed = json.loads((tmp_path / "BENCH_scenarios.json").read_text())
    assert parsed["suite"] == "scenarios"
    assert all(
        entry["guarantee_violations"] == 0 for entry in parsed["results"]
    )
    captured = capsys.readouterr()
    assert "BENCH_scenarios.json" in captured.out


def test_cli_bench_mp_suite_default_output(micro_mp_scale, tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--suite", "mp", "--scale", "tiny"]) == 0
    parsed = json.loads((tmp_path / "BENCH_mp.json").read_text())
    assert parsed["suite"] == "mp"
    assert all(
        entry["equivalent"]
        for entry in parsed["results"]
        if entry["kind"] == "mp"
    )
    captured = capsys.readouterr()
    assert "BENCH_mp.json" in captured.out
