"""Smoke tests for the pinned benchmark harness."""

import json

import pytest

from repro import bench
from repro.errors import ConfigurationError

#: a micro scale so the suite runs in seconds under pytest
_MICRO = {
    "hot_length": 3_000,
    "sim_length": 600,
    "alphabet": 300,
    "capacity": 32,
    "threads": 4,
    "alpha": 2.0,
    "seed": 7,
    "repeats": 1,
}


#: a micro mp scale: 2 workers, small stream, single repeat
_MICRO_MP = {
    "mp_length": 4_000,
    "alphabet": 500,
    "capacity": 64,
    "chunk_elements": 512,
    "workers": [1, 2],
    "alpha": 1.1,
    "seed": 7,
    "repeats": 1,
    "timeout": 60.0,
}


@pytest.fixture
def micro_scale(monkeypatch):
    monkeypatch.setitem(bench.SCALES, "tiny", _MICRO)


@pytest.fixture
def micro_mp_scale(monkeypatch):
    monkeypatch.setitem(bench.MP_SCALES, "tiny", _MICRO_MP)


def test_run_suite_rejects_unknown_scale():
    with pytest.raises(ConfigurationError):
        bench.run_suite("huge")


def test_run_suite_rejects_unknown_suite():
    with pytest.raises(ConfigurationError):
        bench.run_suite("tiny", suite="gpu")


def test_suite_report_shape_and_results(micro_scale, tmp_path):
    report = bench.run_suite("tiny")
    assert report["schema_version"] == bench.SCHEMA_VERSION
    assert report["suite"] == "core"
    assert report["scale"] == "tiny"
    names = [entry["name"] for entry in report["results"]]
    assert names == [
        "sequential-hot-path-per-element",
        "sequential-hot-path-batched",
        "sequential",
        "sequential-batched",
        "shared-mutex",
        "shared-spin",
        "independent-serial",
        "hybrid",
        "cots",
        "cots-preagg",
    ]
    batched = report["results"][1]
    assert batched["identical_results"] is True
    assert batched["speedup_vs_per_element"] > 0
    for entry in report["results"]:
        assert entry["wall_seconds"] > 0
        assert entry["peak_rss_kb"] > 0
        if entry["kind"] == "simulated":
            assert entry["sim_cycles"] > 0
            assert entry["sim_throughput_eps"] > 0
            assert entry["wall_throughput_eps"] > 0

    out = tmp_path / "BENCH_core.json"
    bench.write_report(report, out)
    parsed = json.loads(out.read_text())
    assert parsed["results"][0]["name"] == "sequential-hot-path-per-element"

    text = bench.format_report(report)
    assert "sequential-hot-path-batched" in text
    assert "cots-preagg" in text


def test_cli_bench_writes_report(micro_scale, tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "bench.json"
    assert main(["bench", "--scale", "tiny", "--output", str(out)]) == 0
    parsed = json.loads(out.read_text())
    assert parsed["suite"] == "core"
    captured = capsys.readouterr()
    assert "wrote" in captured.out


def test_mp_suite_report_shape(micro_mp_scale):
    report = bench.run_suite("tiny", suite="mp")
    assert report["suite"] == "mp"
    assert report["host_cores"] >= 1
    names = [entry["name"] for entry in report["results"]]
    assert names == [
        "mp-sequential-batched",
        "mp-sharded-1w",
        "mp-sharded-2w",
    ]
    baseline = report["results"][0]
    assert baseline["kind"] == "wallclock"
    assert baseline["peak_rss_kb"] > 0
    for entry in report["results"][1:]:
        assert entry["kind"] == "mp"
        assert entry["workers"] in (1, 2)
        assert entry["wall_seconds"] > 0
        assert entry["startup_seconds"] > 0
        assert entry["speedup_vs_sequential"] > 0
        assert entry["equivalent"] is True
        assert entry["partition_how"] == "hash"
        assert entry["peak_rss_kb"] > 0

    text = bench.format_report(report)
    assert "mp-sharded-2w" in text
    assert "host_cores" in text
    assert "equivalent=True" in text


def test_cli_bench_mp_suite_default_output(micro_mp_scale, tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--suite", "mp", "--scale", "tiny"]) == 0
    parsed = json.loads((tmp_path / "BENCH_mp.json").read_text())
    assert parsed["suite"] == "mp"
    assert all(
        entry["equivalent"]
        for entry in parsed["results"]
        if entry["kind"] == "mp"
    )
    captured = capsys.readouterr()
    assert "BENCH_mp.json" in captured.out
