"""Property-based tests for the discrete-event engine (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import (
    AtomicCell,
    Compute,
    CostModel,
    Engine,
    MachineSpec,
    Mutex,
)
from repro.simcore.effects import Latency

# One simulated program: a list of (op, value) steps.
_step = st.one_of(
    st.tuples(st.just("compute"), st.integers(min_value=1, max_value=500)),
    st.tuples(st.just("add"), st.integers(min_value=1, max_value=5)),
    st.tuples(st.just("lock"), st.integers(min_value=1, max_value=200)),
    st.tuples(st.just("latency"), st.integers(min_value=100, max_value=2000)),
)
_program = st.lists(_step, min_size=1, max_size=12)
_programs = st.lists(_program, min_size=1, max_size=5)


def _build(programs, cores):
    engine = Engine(machine=MachineSpec(cores=cores), costs=CostModel())
    cell = AtomicCell(0)
    mutex = Mutex()
    tally = {"locked_adds": 0}

    def run(steps):
        for op, value in steps:
            if op == "compute":
                yield Compute(value)
            elif op == "add":
                yield cell.add(value)
            elif op == "latency":
                yield Latency(value)
            else:
                yield mutex.acquire()
                yield Compute(value)
                tally["locked_adds"] += 1
                yield mutex.release()

    for index, steps in enumerate(programs):
        engine.spawn(run(steps), name=f"p{index}")
    return engine, cell, tally


@given(programs=_programs, cores=st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_runs_are_deterministic(programs, cores):
    """Identical inputs produce identical traces and results."""

    def trial():
        engine, cell, tally = _build(programs, cores)
        result = engine.run()
        return (
            result.makespan,
            result.events,
            cell.peek(),
            tally["locked_adds"],
            {name: s.finish_time for name, s in result.threads.items()},
        )

    assert trial() == trial()


@given(programs=_programs, cores=st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_no_update_is_lost(programs, cores):
    """The atomic cell ends at exactly the sum of all requested adds."""
    expected = sum(
        value for steps in programs for op, value in steps if op == "add"
    )
    engine, cell, _ = _build(programs, cores)
    engine.run()
    assert cell.peek() == expected


@given(programs=_programs, cores=st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_every_thread_finishes_and_accounts_balance(programs, cores):
    engine, _, _ = _build(programs, cores)
    result = engine.run()
    for name, stats in result.threads.items():
        assert stats.finish_time is not None
        assert 0 <= stats.finish_time <= result.makespan
        assert stats.busy_cycles >= 0
        assert stats.wait_cycles >= 0
        assert stats.total_cycles == stats.busy_cycles + stats.wait_cycles


@given(
    programs=_programs,
    cores=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_more_cores_never_hurt_compute_only(programs, cores):
    """For pure-compute programs, doubling cores never increases makespan."""
    compute_only = [
        [(op, v) for op, v in steps if op == "compute"] or [("compute", 1)]
        for steps in programs
    ]
    engine_small, _, _ = _build(compute_only, cores)
    small = engine_small.run().makespan
    engine_big, _, _ = _build(compute_only, cores * 2)
    big = engine_big.run().makespan
    assert big <= small
