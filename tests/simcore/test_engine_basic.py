"""Engine unit tests: compute scheduling, cores, accounting."""

import pytest

from repro.errors import SimulationError
from repro.simcore import (
    AtomicCell,
    CacheLine,
    Compute,
    CostModel,
    Engine,
    MachineSpec,
    Now,
)


def _engine(cores=1, **cost_overrides):
    costs = CostModel().replace(**cost_overrides) if cost_overrides else CostModel()
    return Engine(machine=MachineSpec(cores=cores), costs=costs)


def test_single_thread_compute_makespan():
    engine = _engine()

    def program():
        yield Compute(100)
        yield Compute(50)

    engine.spawn(program())
    result = engine.run()
    assert result.makespan == 150
    assert result.events == 2


def test_two_threads_two_cores_run_in_parallel():
    engine = _engine(cores=2)

    def program():
        yield Compute(1000)

    engine.spawn(program())
    engine.spawn(program())
    result = engine.run()
    assert result.makespan == 1000


def test_two_threads_one_core_serialize_with_context_switches():
    engine = _engine(cores=1)

    def program():
        yield Compute(1000)

    engine.spawn(program())
    engine.spawn(program())
    result = engine.run()
    # 2000 cycles of work plus at least one context switch
    assert result.makespan >= 2000 + CostModel().context_switch


def test_return_value_is_recorded():
    engine = _engine()

    def program():
        yield Compute(1)
        return "answer"

    thread = engine.spawn(program())
    engine.run()
    assert thread.stats.return_value == "answer"


def test_now_effect_returns_current_time():
    engine = _engine()
    seen = []

    def program():
        yield Compute(123)
        seen.append((yield Now()))

    engine.spawn(program())
    engine.run()
    assert seen == [123]


def test_tag_accounting_sums_to_busy_plus_wait():
    engine = _engine()

    def program():
        yield Compute(10, tag="a")
        yield Compute(20, tag="b")
        yield Compute(30, tag="a")

    thread = engine.spawn(program())
    result = engine.run()
    assert thread.stats.accounts["a"].busy == 40
    assert thread.stats.accounts["b"].busy == 20
    assert thread.stats.total_cycles == thread.stats.busy_cycles + thread.stats.wait_cycles


def test_breakdown_fractions_sum_to_one():
    engine = _engine()

    def program():
        yield Compute(25, tag="x")
        yield Compute(75, tag="y")

    engine.spawn(program())
    result = engine.run()
    breakdown = result.breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["y"] == pytest.approx(0.75)


def test_throughput_helper():
    engine = _engine()

    def program():
        yield Compute(int(2.4e9))  # one simulated second

    engine.spawn(program())
    result = engine.run()
    assert result.seconds == pytest.approx(1.0)
    assert result.throughput(1000) == pytest.approx(1000.0)


def test_non_effect_yield_raises():
    engine = _engine()

    def program():
        yield 42

    engine.spawn(program())
    with pytest.raises(SimulationError):
        engine.run()


def test_engine_runs_only_once():
    engine = _engine()

    def program():
        yield Compute(1)

    engine.spawn(program())
    engine.run()
    with pytest.raises(SimulationError):
        engine.run()


def test_max_events_guards_against_livelock():
    engine = _engine()

    def forever():
        while True:
            yield Compute(1)

    engine.spawn(forever())
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_atomic_line_contention_serializes():
    """Two cores hammering one line take longer than two private lines."""
    costs = CostModel()

    def run(shared: bool) -> int:
        engine = Engine(machine=MachineSpec(cores=2), costs=costs)
        line = CacheLine()
        cells = (
            [AtomicCell(line=line), AtomicCell(line=line)]
            if shared
            else [AtomicCell(), AtomicCell()]
        )

        def program(cell):
            for _ in range(200):
                yield cell.add(1)

        engine.spawn(program(cells[0]))
        engine.spawn(program(cells[1]))
        return engine.run().makespan

    assert run(shared=True) > run(shared=False)


def test_atomic_results_are_linearized():
    """Concurrent increments never lose updates."""
    engine = _engine(cores=4)
    cell = AtomicCell(0)

    def program():
        for _ in range(100):
            yield cell.add(1)

    for _ in range(4):
        engine.spawn(program())
    engine.run()
    assert cell.peek() == 400


def test_spawn_names_default_and_custom():
    engine = _engine()

    def program():
        yield Compute(1)

    anon = engine.spawn(program())
    named = engine.spawn(program(), name="worker")
    assert anon.name == "thread-0"
    assert named.name == "worker"
    result = engine.run()
    assert set(result.threads) == {"thread-0", "worker"}
