"""Engine unit tests: timeslicing, latency overlap, fairness."""

import pytest

from repro.simcore import Compute, CostModel, Engine, MachineSpec, YieldCPU
from repro.simcore.effects import Latency


def test_latency_releases_the_core():
    """Latency sleeps overlap across threads: 8 threads sleeping 10k
    cycles each on one core finish far sooner than 80k cycles."""
    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())

    def program():
        yield Latency(10_000)

    for _ in range(8):
        engine.spawn(program())
    result = engine.run()
    assert result.makespan < 20_000


def test_latency_vs_compute_makespan():
    """Compute occupies the core; the same cycles as Latency do not."""

    def run(effect_factory):
        engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())

        def program():
            for _ in range(5):
                yield effect_factory()

        engine.spawn(program())
        engine.spawn(program())
        return engine.run().makespan

    compute_time = run(lambda: Compute(5_000))
    latency_time = run(lambda: Latency(5_000))
    assert latency_time < compute_time


def test_latency_accounted_as_wait():
    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())

    def program():
        yield Latency(9_000, tag="io")

    thread = engine.spawn(program())
    engine.run()
    assert thread.stats.accounts["io"].wait >= 9_000


def test_timeslice_preemption_shares_the_core():
    """With a small quantum, two CPU-bound threads interleave: both
    finish within ~2x of the fair share rather than strictly serially."""
    machine = MachineSpec(cores=1, timeslice=1_000)
    engine = Engine(machine=machine, costs=CostModel())
    finish = {}

    def program(name):
        for _ in range(50):
            yield Compute(100)
        finish[name] = True

    a = engine.spawn(program("a"), name="a")
    b = engine.spawn(program("b"), name="b")
    result = engine.run()
    # both ran to completion and neither monopolized: finish times within
    # 40% of each other
    fa = result.threads["a"].finish_time
    fb = result.threads["b"].finish_time
    assert abs(fa - fb) < 0.4 * max(fa, fb)


def test_large_timeslice_runs_to_completion():
    """With a huge quantum the first thread finishes before the second
    gets the core (run-to-completion behaviour)."""
    machine = MachineSpec(cores=1, timeslice=10_000_000)
    engine = Engine(machine=machine, costs=CostModel())

    def program():
        for _ in range(50):
            yield Compute(100)

    engine.spawn(program(), name="a")
    engine.spawn(program(), name="b")
    result = engine.run()
    fa = result.threads["a"].finish_time
    fb = result.threads["b"].finish_time
    assert min(fa, fb) <= 5_100  # the first one was never preempted


def test_yield_cpu_rotates_the_core():
    machine = MachineSpec(cores=1, timeslice=10_000_000)
    engine = Engine(machine=machine, costs=CostModel())
    trace = []

    def program(name):
        for _ in range(3):
            yield Compute(10)
            trace.append(name)
            yield YieldCPU()

    engine.spawn(program("a"))
    engine.spawn(program("b"))
    engine.run()
    # with voluntary yields the two threads alternate
    assert trace[:4] == ["a", "b", "a", "b"]


def test_daemon_threads_do_not_block_completion():
    engine = Engine(machine=MachineSpec(cores=2), costs=CostModel())

    def daemon():
        from repro.simcore.effects import Park

        while True:
            token = yield Park()
            if token == "stop":
                return

    def worker():
        yield Compute(100)

    engine.spawn(daemon(), daemon=True)
    engine.spawn(worker())
    result = engine.run()  # must terminate despite the parked daemon
    assert result.makespan >= 100
