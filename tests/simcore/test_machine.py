"""Unit tests for machine specs."""

import pytest

from repro.errors import ConfigurationError
from repro.simcore.machine import MachineSpec


def test_default_is_the_papers_quad_core():
    spec = MachineSpec()
    assert spec.cores == 4
    assert spec.clock_hz == 2.4e9
    assert spec.name == "intel-q6600"


def test_seconds_conversion():
    spec = MachineSpec(clock_hz=2.0e9)
    assert spec.seconds(2_000_000_000) == pytest.approx(1.0)
    assert spec.seconds(0) == 0.0


def test_fat_camp_preset():
    assert MachineSpec.fat_camp().cores == 4


def test_lean_camp_preset():
    lean = MachineSpec.lean_camp()
    assert lean.cores == 64
    assert lean.clock_hz < MachineSpec.fat_camp().clock_hz


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cores": 0},
        {"clock_hz": 0},
        {"clock_hz": -1.0},
        {"cache_line_bytes": 0},
        {"timeslice": 0},
    ],
)
def test_rejects_invalid_parameters(kwargs):
    with pytest.raises(ConfigurationError):
        MachineSpec(**kwargs)
