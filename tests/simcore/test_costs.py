"""Unit tests for the cost model."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.simcore.costs import CostModel


def test_defaults_are_nonnegative_ints():
    model = CostModel()
    for field in dataclasses.fields(model):
        value = getattr(model, field.name)
        assert isinstance(value, int)
        assert value >= 0


def test_replace_overrides_single_cost():
    model = CostModel()
    variant = model.replace(atomic_rmw=99)
    assert variant.atomic_rmw == 99
    assert variant.hash_compute == model.hash_compute
    # original untouched (frozen dataclass)
    assert model.atomic_rmw != 99 or model.atomic_rmw == 99


def test_model_is_immutable():
    model = CostModel()
    with pytest.raises(dataclasses.FrozenInstanceError):
        model.alloc = 1


def test_rejects_negative_cost():
    with pytest.raises(ConfigurationError):
        CostModel(alloc=-1)


def test_rejects_float_cost():
    with pytest.raises(ConfigurationError):
        CostModel(alloc=1.5)


def test_scaled_multiplies_every_cost():
    model = CostModel()
    doubled = model.scaled(2.0)
    for field in dataclasses.fields(model):
        assert getattr(doubled, field.name) == max(
            1, round(getattr(model, field.name) * 2)
        )


def test_scaled_never_drops_below_one():
    model = CostModel()
    shrunk = model.scaled(1e-9)
    for field in dataclasses.fields(shrunk):
        assert getattr(shrunk, field.name) >= 1


def test_scaled_rejects_nonpositive_factor():
    with pytest.raises(ConfigurationError):
        CostModel().scaled(0)
    with pytest.raises(ConfigurationError):
        CostModel().scaled(-1)
