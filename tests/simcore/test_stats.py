"""Unit tests for the stats aggregation helpers."""

import pytest

from repro.simcore.stats import (
    ExecutionResult,
    TagAccount,
    ThreadStats,
    merge_breakdowns,
)


def _result():
    a = ThreadStats(name="a")
    a.account("hash").add(busy=30, wait=10)
    a.account("rest").add(busy=60)
    a.finish_time = 100
    b = ThreadStats(name="b")
    b.account("hash").add(busy=50, wait=50)
    b.finish_time = 200
    return ExecutionResult(
        makespan=200,
        threads={"a": a, "b": b},
        events=5,
        clock_hz=2.0e9,
        core_busy=[100, 40],
    )


def test_tag_account_totals():
    acct = TagAccount(busy=3, wait=4)
    assert acct.total == 7
    acct.add(busy=1, wait=2)
    assert (acct.busy, acct.wait) == (4, 6)


def test_thread_stats_rollups():
    stats = _result().threads["a"]
    assert stats.busy_cycles == 90
    assert stats.wait_cycles == 10
    assert stats.total_cycles == 100


def test_breakdown_over_all_threads():
    breakdown = _result().breakdown()
    assert breakdown["hash"] == pytest.approx(140 / 200)
    assert breakdown["rest"] == pytest.approx(60 / 200)


def test_breakdown_over_selected_threads():
    breakdown = _result().breakdown(thread_names=["b"])
    assert breakdown == {"hash": 1.0}


def test_tag_cycles_merges_accounts():
    merged = _result().tag_cycles()
    assert merged["hash"].busy == 80
    assert merged["hash"].wait == 60


def test_average_completion_and_filter():
    result = _result()
    assert result.average_completion() == pytest.approx(150.0)
    assert result.average_completion(["a"]) == pytest.approx(100.0)


def test_seconds_and_throughput():
    result = _result()
    assert result.seconds == pytest.approx(1e-7)
    assert result.throughput(100) == pytest.approx(1e9)


def test_core_utilization():
    assert _result().core_utilization() == [0.5, 0.2]
    empty = ExecutionResult(0, {}, 0, 1.0, core_busy=[0])
    assert empty.core_utilization() == [0.0]


def test_zero_makespan_throughput():
    empty = ExecutionResult(0, {}, 0, 1.0)
    assert empty.throughput(0) == 0.0
    assert empty.throughput(5) == float("inf")


def test_merge_breakdowns_averages_tagwise():
    merged = merge_breakdowns(
        [{"x": 0.2, "y": 0.8}, {"x": 0.4, "y": 0.6}]
    )
    assert merged == {"x": pytest.approx(0.3), "y": pytest.approx(0.7)}
    assert merge_breakdowns([]) == {}


def test_merge_breakdowns_with_missing_tags():
    """A tag absent from a run counts as zero for that run."""
    merged = merge_breakdowns([{"x": 1.0}, {"y": 1.0}])
    assert merged == {"x": 0.5, "y": 0.5}
