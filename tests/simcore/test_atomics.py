"""Unit tests for atomic cells and cache lines."""

import pytest

from repro.simcore.atomics import AtomicCell, CacheLine, apply_atomic
from repro.simcore.effects import AtomicOp


def test_cells_get_private_lines_by_default():
    a, b = AtomicCell(), AtomicCell()
    assert a.line is not b.line


def test_cells_can_share_a_line():
    line = CacheLine()
    a, b = AtomicCell(line=line), AtomicCell(line=line)
    assert a.line is b.line


def test_line_ids_are_unique():
    assert CacheLine().line_id != CacheLine().line_id


def test_line_reset_clears_scheduling_state():
    line = CacheLine()
    line.free_at = 100
    line.owner_core = 2
    line.reset()
    assert line.free_at == 0
    assert line.owner_core is None


def test_effect_builders_produce_atomic_ops():
    cell = AtomicCell(5)
    for effect, op in [
        (cell.load(), "load"),
        (cell.store(1), "store"),
        (cell.add(2), "add"),
        (cell.cas(5, 9), "cas"),
        (cell.swap(3), "swap"),
    ]:
        assert isinstance(effect, AtomicOp)
        assert effect.op == op
        assert effect.cell is cell


def test_apply_load():
    assert apply_atomic(AtomicCell(7), "load", None, None) == 7


def test_apply_store():
    cell = AtomicCell(7)
    assert apply_atomic(cell, "store", 9, None) is None
    assert cell.peek() == 9


def test_apply_add_returns_new_value():
    cell = AtomicCell(10)
    assert apply_atomic(cell, "add", 5, None) == 15
    assert cell.peek() == 15


def test_apply_cas_success_and_failure():
    cell = AtomicCell(1)
    assert apply_atomic(cell, "cas", 2, 1) is True
    assert cell.peek() == 2
    assert apply_atomic(cell, "cas", 3, 1) is False
    assert cell.peek() == 2


def test_apply_swap_returns_old_value():
    cell = AtomicCell("old")
    assert apply_atomic(cell, "swap", "new", None) == "old"
    assert cell.peek() == "new"


def test_apply_unknown_op_raises():
    with pytest.raises(ValueError):
        apply_atomic(AtomicCell(), "xadd2", None, None)


def test_atomic_op_rejects_unknown_op():
    with pytest.raises(ValueError):
        AtomicOp(AtomicCell(), "nope")
