"""Unit tests for execution tracing and core utilization."""

import pytest

from repro.errors import ConfigurationError
from repro.simcore import (
    Compute,
    CostModel,
    Engine,
    MachineSpec,
    Mutex,
    TraceRecorder,
)


def _traced_run(cores=2, threads=3, work=5):
    tracer = TraceRecorder()
    engine = Engine(
        machine=MachineSpec(cores=cores), costs=CostModel(), tracer=tracer
    )

    def program():
        for _ in range(work):
            yield Compute(100, tag="work")

    for i in range(threads):
        engine.spawn(program(), name=f"w{i}")
    result = engine.run()
    return tracer, result


def test_recorder_validation():
    with pytest.raises(ConfigurationError):
        TraceRecorder(limit=0)


def test_events_recorded_per_effect():
    tracer, _ = _traced_run(threads=2, work=4)
    assert len(tracer.events) == 8
    assert all(event.effect == "Compute" for event in tracer.events)
    assert all(event.tag == "work" for event in tracer.events)
    assert all(event.end > event.start for event in tracer.events)


def test_events_respect_core_exclusivity():
    """No two events on the same core overlap in time."""
    tracer, _ = _traced_run(cores=2, threads=6, work=10)
    by_core = {}
    for event in tracer.events:
        by_core.setdefault(event.core, []).append(event)
    for events in by_core.values():
        events.sort(key=lambda e: e.start)
        for first, second in zip(events, events[1:]):
            assert first.end <= second.start


def test_core_utilization_between_zero_and_one():
    tracer, result = _traced_run()
    for core, utilization in tracer.core_utilization().items():
        assert 0.0 < utilization <= 1.0
    # engine-side tracking agrees with the trace-side one
    engine_side = result.core_utilization()
    for core, utilization in tracer.core_utilization().items():
        assert engine_side[core] == pytest.approx(utilization, rel=0.01)


def test_effect_histogram_and_thread_activity():
    tracer = TraceRecorder()
    engine = Engine(
        machine=MachineSpec(cores=1), costs=CostModel(), tracer=tracer
    )
    mutex = Mutex()

    def program():
        yield Compute(10)
        yield mutex.acquire()
        yield mutex.release()

    engine.spawn(program(), name="solo")
    engine.run()
    histogram = tracer.effect_histogram()
    assert histogram == {"Compute": 1, "MutexAcquire": 1, "MutexRelease": 1}
    assert tracer.thread_activity()["solo"] > 0


def test_limit_drops_excess_events():
    tracer = TraceRecorder(limit=3)
    engine = Engine(
        machine=MachineSpec(cores=1), costs=CostModel(), tracer=tracer
    )

    def program():
        for _ in range(10):
            yield Compute(5)

    engine.spawn(program())
    engine.run()
    assert len(tracer.events) == 3
    assert tracer.dropped == 7


def test_timeline_renders_rows_per_core():
    tracer, _ = _traced_run(cores=2, threads=4, work=20)
    chart = tracer.timeline(width=40)
    lines = chart.splitlines()
    assert lines[0].startswith("timeline:")
    assert lines[1].startswith("core 0:")
    assert lines[2].startswith("core 1:")
    # the busy run shows thread initials, not only idle dots
    assert any(ch == "w" for ch in lines[1])


def test_timeline_validates_width():
    with pytest.raises(ConfigurationError):
        TraceRecorder().timeline(width=0)


def test_empty_trace_renders():
    tracer = TraceRecorder()
    assert tracer.timeline() == "(empty trace)"
    assert tracer.core_utilization() == {}
    assert "0 events" in tracer.summary()


def test_summary_mentions_utilization():
    tracer, _ = _traced_run()
    text = tracer.summary()
    assert "events" in text
    assert "core0=" in text
