"""Engine edge cases: oversubscription, waiter compaction, odd wakeups."""

import pytest

from repro.errors import DeadlockError
from repro.simcore import (
    AtomicCell,
    Compute,
    CostModel,
    Engine,
    MachineSpec,
    Mutex,
    Park,
    Unpark,
)
from repro.simcore.effects import Latency


def test_hundred_threads_on_one_core_all_finish():
    """Exercises the CPU-waiter FIFO compaction path (> 64 waiters)."""
    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())

    def program():
        for _ in range(3):
            yield Compute(50)

    threads = [engine.spawn(program(), name=f"t{i}") for i in range(100)]
    result = engine.run()
    assert all(t.state == "done" for t in threads)
    assert result.makespan >= 100 * 3 * 50


def test_waiters_complete_when_keep_core_thread_finishes():
    """A thread finishing while holding its core must hand it over."""
    engine = Engine(
        machine=MachineSpec(cores=1, timeslice=10_000_000), costs=CostModel()
    )

    def short():
        yield Compute(10)

    def long():
        yield Compute(100_000)

    engine.spawn(long(), name="long")
    for i in range(5):
        engine.spawn(short(), name=f"s{i}")
    result = engine.run()  # must not deadlock
    assert all(
        stats.finish_time is not None for stats in result.threads.values()
    )


def test_unpark_of_finished_thread_is_ignored():
    engine = Engine(machine=MachineSpec(cores=2), costs=CostModel())

    def quick():
        yield Compute(1)

    def waker(target):
        yield Compute(10_000)
        yield Unpark(target, token="late")

    target = engine.spawn(quick())
    engine.spawn(waker(target))
    engine.run()  # no error: the unpark hits a DONE thread
    assert target.state == "done"


def test_double_unpark_leaves_single_permit():
    engine = Engine(machine=MachineSpec(cores=2), costs=CostModel())
    tokens = []

    def sleeper():
        yield Compute(20_000)
        tokens.append((yield Park()))
        # a second park must block forever -> only reachable if a second
        # permit existed; instead we just end here.

    def waker(target):
        yield Unpark(target, token="first")
        yield Unpark(target, token="second")

    target = engine.spawn(sleeper())
    engine.spawn(waker(target))
    engine.run()
    assert tokens == ["second"]  # the later permit overwrote the first


def test_latency_zero_cycles_is_instantaneous():
    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())
    order = []

    def program():
        yield Latency(0)
        order.append("after")

    engine.spawn(program())
    engine.run()
    assert order == ["after"]


def test_deadlock_error_names_the_stuck_threads():
    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())
    mutex = Mutex()

    def holder():
        yield mutex.acquire()
        # never releases

    def waiter():
        yield Compute(10)
        yield mutex.acquire()

    engine.spawn(holder(), name="keeper")
    engine.spawn(waiter(), name="starved")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    assert "starved" in str(excinfo.value)


def test_atomic_load_and_store_costs_differ_from_rmw():
    costs = CostModel()

    def run(op):
        engine = Engine(machine=MachineSpec(cores=1), costs=costs)
        cell = AtomicCell(0)

        def program():
            for _ in range(10):
                yield getattr(cell, op)(1) if op != "load" else cell.load()

        engine.spawn(program())
        return engine.run().makespan

    assert run("load") < run("store") < run("add")


def test_zero_length_program():
    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())

    def empty():
        return
        yield  # pragma: no cover

    thread = engine.spawn(empty())
    result = engine.run()
    assert thread.state == "done"
    assert result.makespan == 0


def test_staggered_start_times():
    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())
    starts = []

    def program(label):
        from repro.simcore import Now

        starts.append((label, (yield Now())))

    engine.spawn(program("a"), start_at=0)
    engine.spawn(program("b"), start_at=5_000)
    engine.run()
    assert dict(starts)["b"] >= 5_000
