"""Engine unit tests: mutexes, spin locks, barriers, park/unpark."""

import pytest

from repro.errors import DeadlockError, ProtocolError
from repro.simcore import (
    Barrier,
    Compute,
    CostModel,
    Engine,
    MachineSpec,
    Mutex,
    Park,
    SpinLock,
    Unpark,
)


def _engine(cores=4):
    return Engine(machine=MachineSpec(cores=cores), costs=CostModel())


def test_mutex_provides_mutual_exclusion():
    engine = _engine()
    mutex = Mutex()
    state = {"inside": 0, "max_inside": 0, "count": 0}

    def program():
        for _ in range(25):
            yield mutex.acquire()
            state["inside"] += 1
            state["max_inside"] = max(state["max_inside"], state["inside"])
            yield Compute(17)
            state["count"] += 1
            state["inside"] -= 1
            yield mutex.release()

    for _ in range(5):
        engine.spawn(program())
    engine.run()
    assert state["max_inside"] == 1
    assert state["count"] == 125


def test_mutex_fifo_handoff():
    engine = _engine(cores=4)
    mutex = Mutex()
    order = []

    def holder():
        yield mutex.acquire()
        yield Compute(10_000)
        yield mutex.release()

    def waiter(label, delay):
        yield Compute(delay)
        yield mutex.acquire()
        order.append(label)
        yield mutex.release()

    engine.spawn(holder())
    engine.spawn(waiter("first", 100))
    engine.spawn(waiter("second", 200))
    engine.run()
    assert order == ["first", "second"]


def test_mutex_release_by_non_owner_raises():
    engine = _engine()
    mutex = Mutex()

    def bad():
        yield mutex.release()

    engine.spawn(bad())
    with pytest.raises(ProtocolError):
        engine.run()


def test_mutex_reacquire_raises():
    engine = _engine()
    mutex = Mutex()

    def bad():
        yield mutex.acquire()
        yield mutex.acquire()

    engine.spawn(bad())
    with pytest.raises(ProtocolError):
        engine.run()


def test_mutex_deadlock_detected():
    engine = _engine()
    a, b = Mutex("a"), Mutex("b")

    def one():
        yield a.acquire()
        yield Compute(100)
        yield b.acquire()

    def two():
        yield b.acquire()
        yield Compute(100)
        yield a.acquire()

    engine.spawn(one())
    engine.spawn(two())
    with pytest.raises(DeadlockError):
        engine.run()


def test_spinlock_mutual_exclusion_and_retries():
    engine = _engine(cores=2)
    lock = SpinLock()
    state = {"count": 0, "inside": 0, "max_inside": 0}

    def program():
        for _ in range(30):
            yield lock.acquire()
            state["inside"] += 1
            state["max_inside"] = max(state["max_inside"], state["inside"])
            yield Compute(40)
            state["count"] += 1
            state["inside"] -= 1
            yield lock.release()

    threads = [engine.spawn(program()) for _ in range(3)]
    engine.run()
    assert state["max_inside"] == 1
    assert state["count"] == 90
    assert sum(t.stats.spin_retries for t in threads) > 0


def test_spinlock_release_by_non_owner_raises():
    engine = _engine()
    lock = SpinLock()

    def bad():
        yield lock.release()

    engine.spawn(bad())
    with pytest.raises(ProtocolError):
        engine.run()


def test_barrier_synchronizes_all_parties():
    engine = _engine()
    barrier = Barrier(3)
    after = []

    def program(i):
        yield Compute(100 * (i + 1))
        generation = yield barrier.wait()
        after.append((i, generation))

    for i in range(3):
        engine.spawn(program(i))
    engine.run()
    assert sorted(g for _, g in after) == [1, 1, 1]


def test_barrier_is_reusable():
    engine = _engine()
    barrier = Barrier(2)
    generations = []

    def program():
        for _ in range(3):
            generations.append((yield barrier.wait()))

    engine.spawn(program())
    engine.spawn(program())
    engine.run()
    assert sorted(generations) == [1, 1, 2, 2, 3, 3]


def test_barrier_missing_party_deadlocks():
    engine = _engine()
    barrier = Barrier(2)

    def program():
        yield barrier.wait()

    engine.spawn(program())
    with pytest.raises(DeadlockError):
        engine.run()


def test_barrier_rejects_zero_parties():
    with pytest.raises(ValueError):
        Barrier(0)


def test_park_then_unpark_delivers_token():
    engine = _engine()
    got = []

    def sleeper():
        got.append((yield Park()))

    def waker(target):
        yield Compute(500)
        yield Unpark(target, token=123)

    target = engine.spawn(sleeper())
    engine.spawn(waker(target))
    engine.run()
    assert got == [123]


def test_unpark_before_park_leaves_permit():
    engine = _engine()
    got = []

    def sleeper():
        yield Compute(5_000)  # unpark arrives while we are still busy
        got.append((yield Park()))

    def waker(target):
        yield Unpark(target, token="early")

    target = engine.spawn(sleeper())
    engine.spawn(waker(target))
    engine.run()
    assert got == ["early"]


def test_parked_non_daemon_thread_is_a_deadlock():
    engine = _engine()

    def sleeper():
        yield Park()

    engine.spawn(sleeper())
    with pytest.raises(DeadlockError):
        engine.run()


def test_parked_daemon_thread_is_closed_at_end():
    engine = _engine()

    def sleeper():
        yield Park()

    def worker():
        yield Compute(100)

    daemon = engine.spawn(sleeper(), daemon=True)
    engine.spawn(worker())
    result = engine.run()
    assert daemon.state == "done"
    assert result.threads[daemon.name].finish_time is not None
