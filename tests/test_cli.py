"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_generate_prints_stream(capsys):
    assert main(["generate", "--length", "25", "--alpha", "2.0"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 25
    assert all(line.strip().lstrip("-").isdigit() for line in lines)


def test_generate_deterministic(capsys):
    main(["generate", "--length", "10", "--seed", "4"])
    first = capsys.readouterr().out
    main(["generate", "--length", "10", "--seed", "4"])
    second = capsys.readouterr().out
    assert first == second


def test_count_from_file(tmp_path, capsys):
    stream_file = tmp_path / "stream.txt"
    stream_file.write_text("\n".join(["a"] * 5 + ["b"] * 2 + ["c"]))
    code = main(
        ["count", str(stream_file), "--algorithm", "space-saving",
         "--capacity", "10", "--top", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "8 elements processed" in out
    assert "a\t5" in out
    assert "b\t2" in out


@pytest.mark.parametrize(
    "algorithm",
    ["space-saving", "lossy-counting", "misra-gries",
     "sticky-sampling", "count-min", "exact"],
)
def test_count_every_algorithm(tmp_path, capsys, algorithm):
    stream_file = tmp_path / "stream.txt"
    stream_file.write_text("\n".join(["x"] * 20 + ["y"] * 5))
    code = main(
        ["count", str(stream_file), "--algorithm", algorithm, "--top", "1"]
    )
    assert code == 0
    assert "x" in capsys.readouterr().out


def test_count_with_workers_uses_mp_backend(tmp_path, capsys):
    stream_file = tmp_path / "stream.txt"
    stream_file.write_text("\n".join(["a"] * 5 + ["b"] * 2 + ["c"]))
    code = main(
        ["count", str(stream_file), "--workers", "2",
         "--capacity", "10", "--top", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "8 elements processed" in out
    assert "a\t5" in out


def test_count_workers_requires_space_saving(tmp_path, capsys):
    stream_file = tmp_path / "stream.txt"
    stream_file.write_text("a\nb\n")
    code = main(
        ["count", str(stream_file), "--algorithm", "exact", "--workers", "2"]
    )
    assert code == 2
    assert "space-saving" in capsys.readouterr().err


def test_count_with_phi(tmp_path, capsys):
    stream_file = tmp_path / "stream.txt"
    stream_file.write_text("\n".join(["hot"] * 9 + ["cold"]))
    main(["count", str(stream_file), "--phi", "0.5"])
    out = capsys.readouterr().out
    assert "above 50.000% support" in out
    assert "hot\t9" in out


@pytest.mark.parametrize(
    "scheme",
    ["sequential", "shared", "shared-spin", "independent", "hybrid",
     "cots", "cots-lossy"],
)
def test_simulate_every_scheme(capsys, scheme):
    code = main(
        ["simulate", "--scheme", scheme, "--threads", "4",
         "--length", "600", "--capacity", "32"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput:" in out
    assert "top-5:" in out


def test_experiment_single(capsys):
    code = main(["experiment", "fig3a", "--scale", "tiny"])
    assert code == 0
    assert "Figure 3(a)" in capsys.readouterr().out


def test_experiment_writes_output(tmp_path, capsys):
    code = main(
        ["experiment", "table2", "--scale", "tiny",
         "--output", str(tmp_path)]
    )
    assert code == 0
    capsys.readouterr()
    assert (tmp_path / "table2.txt").exists()


def test_experiment_with_chart(capsys):
    code = main(
        ["experiment", "fig3b", "--scale", "tiny",
         "--chart", "threads", "speedup"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "threads: " in out
    assert "speedup: " in out


def test_experiment_unknown_id(capsys):
    code = main(["experiment", "fig99", "--scale", "tiny"])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_trace_prints_timeline(capsys):
    code = main(
        ["trace", "--threads", "4", "--length", "300", "--width", "40"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "timeline:" in out
    assert "core 0:" in out
    assert "utilization:" in out


def test_trace_sim_mode_exports_chrome_json(tmp_path, capsys):
    out = tmp_path / "sim.json"
    code = main(
        ["trace", "--threads", "4", "--length", "300", "--width", "40",
         "--out", str(out)]
    )
    assert code == 0
    assert f"wrote {out}" in capsys.readouterr().out
    _assert_valid_trace(out, expected_mode="sim")


def test_trace_cots_mode_prints_and_exports(tmp_path, capsys):
    out = tmp_path / "cots.json"
    code = main(
        ["trace", "--mode", "cots", "--threads", "4", "--length", "400",
         "--capacity", "32", "--out", str(out)]
    )
    assert code == 0
    stdout = capsys.readouterr().out
    assert "timeline" in stdout
    assert "simulated time:" in stdout
    doc = _assert_valid_trace(out, expected_mode="cots")
    assert doc["otherData"]["clock"] == "cycles"
    assert {e["name"] for e in doc["traceEvents"]} & {"delegate", "drain"}


def test_trace_mp_mode_prints_and_exports(tmp_path, capsys):
    out = tmp_path / "mp.json"
    code = main(
        ["trace", "--mode", "mp", "--workers", "2", "--length", "2000",
         "--out", str(out)]
    )
    assert code == 0
    assert "wall time:" in capsys.readouterr().out
    doc = _assert_valid_trace(out, expected_mode="mp")
    assert doc["otherData"]["clock"] == "seconds"
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"dispatch", "snapshot", "merge"} <= names


def _assert_valid_trace(path, expected_mode):
    import json

    from repro.obs import validate_chrome_trace

    doc = json.loads(path.read_text())
    validate_chrome_trace(doc)
    assert doc["otherData"]["mode"] == expected_mode
    assert doc["traceEvents"]
    return doc


def _write_bench_report(path, wall):
    import json

    path.write_text(json.dumps({
        "suite": "core", "scale": "tiny",
        "results": [{"name": "entry-a", "wall_seconds": wall}],
    }))


def test_report_diff_clean_exits_zero(tmp_path, capsys):
    before, after = tmp_path / "a.json", tmp_path / "b.json"
    _write_bench_report(before, 1.0)
    _write_bench_report(after, 1.0)
    assert main(["report", "--diff", str(before), str(after)]) == 0
    assert "0 regressions" in capsys.readouterr().out


def test_report_diff_regression_exits_nonzero(tmp_path, capsys):
    before, after = tmp_path / "a.json", tmp_path / "b.json"
    _write_bench_report(before, 1.0)
    _write_bench_report(after, 2.0)          # injected 2x slowdown
    assert main(["report", "--diff", str(before), str(after)]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_report_diff_tolerance_override(tmp_path, capsys):
    before, after = tmp_path / "a.json", tmp_path / "b.json"
    _write_bench_report(before, 1.0)
    _write_bench_report(after, 2.0)
    code = main(
        ["report", "--diff", str(before), str(after), "--tolerance", "5.0"]
    )
    assert code == 0
    capsys.readouterr()


def test_report_diff_json_output(tmp_path, capsys):
    import json

    before, after = tmp_path / "a.json", tmp_path / "b.json"
    _write_bench_report(before, 1.0)
    _write_bench_report(after, 2.0)
    code = main(
        ["report", "--diff", str(before), str(after), "--json"]
    )
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["regressions"] == 1


def test_report_diff_missing_file_exits_two(tmp_path, capsys):
    present = tmp_path / "a.json"
    _write_bench_report(present, 1.0)
    code = main(
        ["report", "--diff", str(present), str(tmp_path / "missing.json")]
    )
    assert code == 2
    assert "report:" in capsys.readouterr().err


def test_report_json_tolerates_pre_metrics_reports(tmp_path, capsys):
    import json

    path = tmp_path / "old.json"
    _write_bench_report(path, 1.0)           # entries without metrics
    assert main(["report", str(path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["entries"] == [{"name": "entry-a", "metrics": {}}]


def test_no_command_is_an_error():
    with pytest.raises(SystemExit):
        main([])


# ----------------------------------------------------------------------
# Live telemetry flags: serve's watchdog/exposition knobs and repro top
# ----------------------------------------------------------------------
def test_serve_parser_accepts_telemetry_flags():
    from repro.cli import _build_parser

    args = _build_parser().parse_args([
        "serve", "--port", "0", "--metrics-port", "9109",
        "--watchdog-interval", "0.2", "--probe-keys", "64",
        "--fault", "flush-failure",
    ])
    assert args.metrics_port == 9109
    assert args.watchdog_interval == 0.2
    assert args.probe_keys == 64
    assert args.fault == "flush-failure"


def test_serve_parser_defaults_leave_telemetry_extras_off():
    from repro.cli import _build_parser

    args = _build_parser().parse_args(["serve", "--port", "0"])
    assert args.metrics_port is None
    assert args.fault is None
    assert args.probe_keys == 128


def test_serve_parser_rejects_unknown_fault():
    from repro.cli import _build_parser

    with pytest.raises(SystemExit):
        _build_parser().parse_args(["serve", "--fault", "power-loss"])


def test_top_parser_flags():
    from repro.cli import _build_parser

    args = _build_parser().parse_args([
        "top", "--port", "7071", "--period", "0.5", "--frames", "3",
        "--once", "--json", "--raw",
    ])
    assert args.command == "top"
    assert args.port == 7071 and args.period == 0.5 and args.frames == 3
    assert args.once and args.as_json and args.raw


def test_top_connect_failure_exits_nonzero(capsys):
    import socket

    # bind-then-close: a port with nothing listening behind it
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    code = main(["top", "--port", str(port), "--once"])
    assert code == 2
    assert "cannot connect" in capsys.readouterr().err
