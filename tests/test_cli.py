"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_generate_prints_stream(capsys):
    assert main(["generate", "--length", "25", "--alpha", "2.0"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 25
    assert all(line.strip().lstrip("-").isdigit() for line in lines)


def test_generate_deterministic(capsys):
    main(["generate", "--length", "10", "--seed", "4"])
    first = capsys.readouterr().out
    main(["generate", "--length", "10", "--seed", "4"])
    second = capsys.readouterr().out
    assert first == second


def test_count_from_file(tmp_path, capsys):
    stream_file = tmp_path / "stream.txt"
    stream_file.write_text("\n".join(["a"] * 5 + ["b"] * 2 + ["c"]))
    code = main(
        ["count", str(stream_file), "--algorithm", "space-saving",
         "--capacity", "10", "--top", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "8 elements processed" in out
    assert "a\t5" in out
    assert "b\t2" in out


@pytest.mark.parametrize(
    "algorithm",
    ["space-saving", "lossy-counting", "misra-gries",
     "sticky-sampling", "count-min", "exact"],
)
def test_count_every_algorithm(tmp_path, capsys, algorithm):
    stream_file = tmp_path / "stream.txt"
    stream_file.write_text("\n".join(["x"] * 20 + ["y"] * 5))
    code = main(
        ["count", str(stream_file), "--algorithm", algorithm, "--top", "1"]
    )
    assert code == 0
    assert "x" in capsys.readouterr().out


def test_count_with_workers_uses_mp_backend(tmp_path, capsys):
    stream_file = tmp_path / "stream.txt"
    stream_file.write_text("\n".join(["a"] * 5 + ["b"] * 2 + ["c"]))
    code = main(
        ["count", str(stream_file), "--workers", "2",
         "--capacity", "10", "--top", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "8 elements processed" in out
    assert "a\t5" in out


def test_count_workers_requires_space_saving(tmp_path, capsys):
    stream_file = tmp_path / "stream.txt"
    stream_file.write_text("a\nb\n")
    code = main(
        ["count", str(stream_file), "--algorithm", "exact", "--workers", "2"]
    )
    assert code == 2
    assert "space-saving" in capsys.readouterr().err


def test_count_with_phi(tmp_path, capsys):
    stream_file = tmp_path / "stream.txt"
    stream_file.write_text("\n".join(["hot"] * 9 + ["cold"]))
    main(["count", str(stream_file), "--phi", "0.5"])
    out = capsys.readouterr().out
    assert "above 50.000% support" in out
    assert "hot\t9" in out


@pytest.mark.parametrize(
    "scheme",
    ["sequential", "shared", "shared-spin", "independent", "hybrid",
     "cots", "cots-lossy"],
)
def test_simulate_every_scheme(capsys, scheme):
    code = main(
        ["simulate", "--scheme", scheme, "--threads", "4",
         "--length", "600", "--capacity", "32"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput:" in out
    assert "top-5:" in out


def test_experiment_single(capsys):
    code = main(["experiment", "fig3a", "--scale", "tiny"])
    assert code == 0
    assert "Figure 3(a)" in capsys.readouterr().out


def test_experiment_writes_output(tmp_path, capsys):
    code = main(
        ["experiment", "table2", "--scale", "tiny",
         "--output", str(tmp_path)]
    )
    assert code == 0
    capsys.readouterr()
    assert (tmp_path / "table2.txt").exists()


def test_experiment_with_chart(capsys):
    code = main(
        ["experiment", "fig3b", "--scale", "tiny",
         "--chart", "threads", "speedup"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "threads: " in out
    assert "speedup: " in out


def test_experiment_unknown_id(capsys):
    code = main(["experiment", "fig99", "--scale", "tiny"])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_trace_prints_timeline(capsys):
    code = main(
        ["trace", "--threads", "4", "--length", "300", "--width", "40"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "timeline:" in out
    assert "core 0:" in out
    assert "utilization:" in out


def test_no_command_is_an_error():
    with pytest.raises(SystemExit):
        main([])
