"""Unit tests for the sequential baseline driver."""

import pytest

from repro.parallel.base import (
    SchemeConfig,
    dynamic_update_cycles,
    lookup_cycles,
    op_kind,
    partition_sizes,
    thread_names,
    update_cycles,
)
from repro.parallel.sequential import run_sequential
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError
from repro.simcore import CostModel


def test_sequential_counts_exactly_like_plain_space_saving(skewed_stream):
    result = run_sequential(skewed_stream, SchemeConfig(capacity=40))
    reference = SpaceSaving(capacity=40)
    reference.process_many(skewed_stream)
    assert dict(result.counter.counts()) == dict(reference.counts())
    assert result.elements == len(skewed_stream)
    assert result.threads == 1
    assert result.scheme == "sequential"


def test_sequential_time_linear_in_stream_length(skewed_stream):
    half = run_sequential(skewed_stream[: len(skewed_stream) // 2],
                          SchemeConfig(capacity=40))
    full = run_sequential(skewed_stream, SchemeConfig(capacity=40))
    ratio = full.cycles / half.cycles
    assert 1.6 <= ratio <= 2.4


def test_sequential_throughput_order_of_magnitude(skewed_stream):
    result = run_sequential(skewed_stream, SchemeConfig(capacity=40))
    # ~10-40M elements/s/core at 2.4GHz with the default cost model
    assert 1e6 < result.throughput < 1e8


def test_op_kind_transitions():
    counter = SpaceSaving(capacity=2)
    assert op_kind(counter, "a") == "insert"
    counter.process("a")
    assert op_kind(counter, "a") == "increment"
    counter.process("b")
    assert op_kind(counter, "c") == "overwrite"


def test_update_cycles_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        update_cycles(CostModel(), "replace")


def test_dynamic_update_cycles_adds_alloc_for_new_bucket():
    costs = CostModel()
    counter = SpaceSaving(capacity=8)
    counter.process("a")  # bucket 1 with {a}
    counter.process("b")  # bucket 1 with {a, b}
    # incrementing a creates bucket 2 but does not empty bucket 1
    kind, cycles = dynamic_update_cycles(counter, "a", costs)
    assert kind == "increment"
    assert cycles == update_cycles(costs, "increment") + costs.alloc
    counter.process("a")
    # incrementing b moves it into existing bucket 2... but it empties
    # bucket 1 AND bucket 2 exists: only the free charge applies
    kind, cycles = dynamic_update_cycles(counter, "b", costs)
    assert kind == "increment"
    assert cycles == update_cycles(costs, "increment") + costs.free


def test_lookup_cycles_positive():
    assert lookup_cycles(CostModel()) > 0


def test_partition_sizes():
    assert partition_sizes(10, 3) == [4, 3, 3]
    assert partition_sizes(2, 4) == [1, 1, 0, 0]


def test_thread_names():
    assert thread_names("w", 3) == ["w-0", "w-1", "w-2"]


def test_scheme_config_validation():
    with pytest.raises(ConfigurationError):
        SchemeConfig(threads=0)
    with pytest.raises(ConfigurationError):
        SchemeConfig(capacity=0)
