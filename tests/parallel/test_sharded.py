"""Tests for the hash-sharded simulated scheme."""

from repro.parallel.base import SchemeConfig
from repro.parallel.sharded import run_sharded
from repro.workloads import uniform_stream, zipf_stream


def test_sharded_counts_are_exact_per_key(skewed_stream, exact_skewed):
    """Disjoint key ownership means no cross-shard error for hot keys."""
    result = run_sharded(skewed_stream, SchemeConfig(threads=4, capacity=200))
    for element, truth in exact_skewed.top_k(10):
        assert result.counter.estimate(element) == truth


def test_sharded_processes_everything(skewed_stream):
    result = run_sharded(skewed_stream, SchemeConfig(threads=4, capacity=64))
    assert sum(result.extras["loads"]) == len(skewed_stream)
    assert result.scheme == "sharded"


def test_skew_causes_load_imbalance():
    uniform = run_sharded(
        uniform_stream(4000, 4000, seed=1),
        SchemeConfig(threads=8, capacity=64),
    )
    skewed = run_sharded(
        zipf_stream(4000, 4000, 3.0, seed=1),
        SchemeConfig(threads=8, capacity=64),
    )
    assert skewed.extras["imbalance"] > 2.0
    assert uniform.extras["imbalance"] < skewed.extras["imbalance"]


def test_hot_shard_bounds_the_makespan():
    """Under heavy skew the run takes as long as the hot shard alone."""
    stream = zipf_stream(4000, 4000, 3.0, seed=2)
    few = run_sharded(stream, SchemeConfig(threads=2, capacity=64))
    many = run_sharded(stream, SchemeConfig(threads=16, capacity=64))
    # adding shards barely helps: the hot element pins one shard
    hot_load = max(many.extras["loads"])
    assert hot_load > 0.7 * len(stream)
    assert many.seconds > 0.5 * few.seconds


def test_uniform_stream_scales_nicely():
    stream = uniform_stream(4000, 4000, seed=3)
    one = run_sharded(stream, SchemeConfig(threads=1, capacity=64))
    four = run_sharded(stream, SchemeConfig(threads=4, capacity=64))
    assert four.seconds < 0.5 * one.seconds
