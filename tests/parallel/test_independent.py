"""Unit tests for the Independent Structures scheme."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel.base import SchemeConfig
from repro.parallel.independent import run_independent


def test_final_merge_preserves_total(skewed_stream):
    result = run_independent(skewed_stream, SchemeConfig(threads=4, capacity=40))
    assert result.counter.processed == len(skewed_stream)


def test_locals_partition_the_stream(skewed_stream):
    result = run_independent(skewed_stream, SchemeConfig(threads=4, capacity=40))
    locals_ = result.extras["locals"]
    assert len(locals_) == 4
    assert sum(local.processed for local in locals_) == len(skewed_stream)


def test_merged_answers_match_exact_top_elements(skewed_stream, exact_skewed):
    result = run_independent(
        skewed_stream, SchemeConfig(threads=4, capacity=60), merge_every=400
    )
    got = [entry.element for entry in result.counter.top_k(3)]
    expected = [element for element, _ in exact_skewed.top_k(3)]
    assert got == expected


def test_merge_rounds_match_interval(skewed_stream):
    config = SchemeConfig(threads=4, capacity=40)
    result = run_independent(skewed_stream, config, merge_every=500)
    # roughly len(stream)/500 rounds (parameterized by partition length)
    assert result.extras["merge_rounds"] >= len(skewed_stream) // 500
    assert len(result.extras["merge_log"]) == result.extras["merge_rounds"]


def test_no_periodic_merges_when_disabled(skewed_stream):
    result = run_independent(skewed_stream, SchemeConfig(threads=4, capacity=40))
    assert result.extras["merge_rounds"] == 0
    assert result.extras["merge_log"] == []


def test_merge_cost_grows_with_threads(skewed_stream):
    """More threads => more counters to fold per merge => larger merge share."""
    def merge_share(threads):
        result = run_independent(
            skewed_stream,
            SchemeConfig(threads=threads, capacity=40),
            merge_every=len(skewed_stream) // 20,
        )
        return result.breakdown().get("merge", 0.0)

    assert merge_share(8) > merge_share(1)


def test_hierarchical_strategy_runs_and_matches_serial(skewed_stream):
    serial = run_independent(
        skewed_stream,
        SchemeConfig(threads=4, capacity=40),
        merge_every=1000,
        strategy="serial",
    )
    tree = run_independent(
        skewed_stream,
        SchemeConfig(threads=4, capacity=40),
        merge_every=1000,
        strategy="hierarchical",
    )
    assert dict(serial.counter.counts()) == dict(tree.counter.counts())
    assert tree.scheme == "independent-hierarchical"


def test_invalid_strategy_rejected(skewed_stream):
    with pytest.raises(ConfigurationError):
        run_independent(skewed_stream, strategy="magic")


def test_single_thread_equals_sequential_counts(skewed_stream):
    from repro.parallel.sequential import run_sequential

    independent = run_independent(
        skewed_stream, SchemeConfig(threads=1, capacity=40)
    )
    sequential = run_sequential(skewed_stream, SchemeConfig(capacity=40))
    assert dict(independent.counter.counts()) == dict(
        sequential.counter.counts()
    )


def test_counting_phase_scales_before_merges_dominate(skewed_stream):
    """Without merges, independent counting time drops with threads."""
    one = run_independent(skewed_stream, SchemeConfig(threads=1, capacity=40))
    four = run_independent(skewed_stream, SchemeConfig(threads=4, capacity=40))
    assert four.seconds < one.seconds
