"""Tests for the lock-acquiring interval reader of the Shared scheme."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel.base import SchemeConfig
from repro.parallel.shared import run_shared


def test_reader_collects_answers_and_counts_stay_exact(skewed_stream, exact_skewed):
    result = run_shared(
        skewed_stream,
        SchemeConfig(threads=4, capacity=64),
        query_every_cycles=200_000,
        query_top_k=3,
    )
    log = result.extras["query_log"]
    assert len(log) >= 2
    assert result.counter.summary.total_count == len(skewed_stream)
    # final answer names the true heavy hitters
    final = [element for element, _ in log[-1][1]]
    expected = [element for element, _ in exact_skewed.top_k(3)]
    assert final[:3] == expected


def test_reader_slows_the_writers(skewed_stream):
    """Reader locks block updates: the queried run takes longer."""
    plain = run_shared(skewed_stream, SchemeConfig(threads=4, capacity=64))
    queried = run_shared(
        skewed_stream,
        SchemeConfig(threads=4, capacity=64),
        query_every_cycles=100_000,
    )
    assert queried.seconds >= plain.seconds


def test_reader_answers_are_timestamped_in_order(skewed_stream):
    result = run_shared(
        skewed_stream,
        SchemeConfig(threads=2, capacity=64),
        query_every_cycles=300_000,
    )
    times = [at for at, _ in result.extras["query_log"]]
    assert times == sorted(times)


def test_no_reader_by_default(skewed_stream):
    result = run_shared(skewed_stream, SchemeConfig(threads=2, capacity=32))
    assert result.extras["query_log"] == []


def test_negative_interval_rejected(skewed_stream):
    with pytest.raises(ConfigurationError):
        run_shared(skewed_stream, query_every_cycles=-5)


def test_reader_with_spin_locks(skewed_stream):
    result = run_shared(
        skewed_stream,
        SchemeConfig(threads=4, capacity=64),
        lock_kind="spin",
        query_every_cycles=250_000,
    )
    assert result.counter.summary.total_count == len(skewed_stream)
    assert len(result.extras["query_log"]) >= 1
