"""Unit tests for the lock-based Shared Structure scheme."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel.base import SchemeConfig
from repro.parallel.shared import run_shared


def test_shared_counts_are_conserved(skewed_stream):
    result = run_shared(skewed_stream, SchemeConfig(threads=4, capacity=40))
    assert result.counter.summary.total_count == len(skewed_stream)
    result.counter.summary.check_invariants()


def test_shared_estimates_upper_bound_truth(skewed_stream, exact_skewed):
    result = run_shared(skewed_stream, SchemeConfig(threads=4, capacity=60))
    for element, truth in exact_skewed.top_k(10):
        assert result.counter.estimate(element) >= truth


def test_contention_degrades_from_one_to_four_threads(skewed_stream):
    one = run_shared(skewed_stream, SchemeConfig(threads=1, capacity=40))
    four = run_shared(skewed_stream, SchemeConfig(threads=4, capacity=40))
    assert four.seconds > one.seconds


def test_flat_beyond_core_count(skewed_stream):
    four = run_shared(skewed_stream, SchemeConfig(threads=4, capacity=40))
    sixteen = run_shared(skewed_stream, SchemeConfig(threads=16, capacity=40))
    assert sixteen.seconds < four.seconds * 3


def test_profiling_tags_present(skewed_stream):
    result = run_shared(skewed_stream, SchemeConfig(threads=4, capacity=40))
    breakdown = result.breakdown()
    assert "hash" in breakdown
    assert "structure" in breakdown
    # element-level blocking is the dominant share under skew + threads
    assert breakdown["hash"] > 0.3


def test_hash_share_grows_with_threads(skewed_stream):
    def hash_share(threads):
        result = run_shared(
            skewed_stream, SchemeConfig(threads=threads, capacity=40)
        )
        return result.breakdown().get("hash", 0.0)

    assert hash_share(4) > hash_share(1)


def test_spin_lock_variant_counts_correctly(skewed_stream):
    result = run_shared(
        skewed_stream, SchemeConfig(threads=4, capacity=40), lock_kind="spin"
    )
    assert result.counter.summary.total_count == len(skewed_stream)
    assert result.scheme == "shared-spin"


def test_spin_burns_more_cpu_than_mutex(skewed_stream):
    mutex = run_shared(
        skewed_stream, SchemeConfig(threads=8, capacity=40), lock_kind="mutex"
    )
    spin = run_shared(
        skewed_stream, SchemeConfig(threads=8, capacity=40), lock_kind="spin"
    )
    busy = lambda r: sum(
        t.busy_cycles for t in r.execution.threads.values()
    )
    assert busy(spin) > busy(mutex)


def test_invalid_lock_kind_rejected(skewed_stream):
    with pytest.raises(ConfigurationError):
        run_shared(skewed_stream, lock_kind="rwlock")


def test_mild_stream_also_conserved(mild_stream):
    result = run_shared(mild_stream, SchemeConfig(threads=8, capacity=50))
    assert result.counter.summary.total_count == len(mild_stream)
    result.counter.summary.check_invariants()
