"""Tests for the inter-operator parallelism baseline."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel.inter_operator import OperatorSpec, run_inter_operator
from repro.simcore import MachineSpec
from repro.workloads import zipf_stream


def _specs(count, length=800):
    return [
        OperatorSpec(
            name=f"op{i}",
            stream=zipf_stream(length, length, 1.5, seed=i),
            capacity=32,
        )
        for i in range(count)
    ]


def test_operators_count_independently():
    result = run_inter_operator(_specs(3))
    assert set(result.counters) == {"op0", "op1", "op2"}
    for spec_count in result.counters.values():
        assert spec_count.processed == 800


def test_scales_up_to_core_count():
    one = run_inter_operator(_specs(1))
    four = run_inter_operator(_specs(4))
    # four independent operators on four cores finish in about the time
    # of one (within scheduling noise)
    assert four.seconds < 1.5 * one.seconds


def test_stops_scaling_beyond_cores():
    four = run_inter_operator(_specs(4))
    eight = run_inter_operator(_specs(8))
    # twice the operators on the same four cores takes roughly twice as long
    assert eight.seconds > 1.5 * four.seconds


def test_lean_camp_machine_absorbs_more_operators():
    eight_fat = run_inter_operator(_specs(8))
    eight_lean = run_inter_operator(
        _specs(8), machine=MachineSpec.lean_camp()
    )
    # 64 slow cores still beat 4 fast ones for 8 independent operators?
    # Not necessarily on wall time (clock is slower), but every operator
    # gets its own context: per-operator finish spread is tighter.
    finish_fat = eight_fat.operator_finish_seconds().values()
    finish_lean = eight_lean.operator_finish_seconds().values()
    spread = lambda xs: (max(xs) - min(xs)) / max(xs)
    assert spread(list(finish_lean)) < spread(list(finish_fat)) + 0.05


def test_validation():
    with pytest.raises(ConfigurationError):
        run_inter_operator([])
    with pytest.raises(ConfigurationError):
        run_inter_operator(
            [OperatorSpec("dup", [1]), OperatorSpec("dup", [2])]
        )
    with pytest.raises(ConfigurationError):
        OperatorSpec("x", [1], capacity=0)
