"""Unit tests for the Hybrid local+global scheme (§4.4)."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel.base import SchemeConfig
from repro.parallel.hybrid import run_hybrid


def test_hybrid_conserves_total_counts(skewed_stream):
    result = run_hybrid(skewed_stream, SchemeConfig(threads=4, capacity=60))
    assert result.counter.summary.total_count == len(skewed_stream)
    result.counter.summary.check_invariants()


def test_hybrid_top_elements_match_exact(skewed_stream, exact_skewed):
    result = run_hybrid(skewed_stream, SchemeConfig(threads=4, capacity=60))
    got = [entry.element for entry in result.counter.top_k(3)]
    expected = [element for element, _ in exact_skewed.top_k(3)]
    assert got == expected


def test_local_cache_absorbs_hot_elements(skewed_stream):
    """On skewed data, the local caches absorb most updates: the hybrid
    spends a larger fraction in (unsynchronized) counting than shared."""
    from repro.parallel.shared import run_shared

    hybrid = run_hybrid(skewed_stream, SchemeConfig(threads=4, capacity=60))
    shared = run_shared(skewed_stream, SchemeConfig(threads=4, capacity=60))
    assert hybrid.breakdown().get("counting", 0.0) > 0.1
    assert hybrid.seconds < shared.seconds


def test_flush_interval_and_local_capacity_respected(skewed_stream):
    result = run_hybrid(
        skewed_stream,
        SchemeConfig(threads=2, capacity=80),
        flush_every=128,
        local_capacity=10,
    )
    assert result.extras["flush_every"] == 128
    assert result.extras["local_capacity"] == 10
    assert result.counter.summary.total_count == len(skewed_stream)


def test_default_local_capacity_is_quarter(skewed_stream):
    result = run_hybrid(skewed_stream, SchemeConfig(threads=2, capacity=80))
    assert result.extras["local_capacity"] == 20


def test_invalid_flush_interval(skewed_stream):
    with pytest.raises(ConfigurationError):
        run_hybrid(skewed_stream, flush_every=0)


def test_mild_stream_conserved(mild_stream):
    result = run_hybrid(mild_stream, SchemeConfig(threads=4, capacity=60))
    assert result.counter.summary.total_count == len(mild_stream)
