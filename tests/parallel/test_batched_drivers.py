"""Batched (run-fused) fast lanes of the sequential/independent drivers."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel.independent import run_independent
from repro.parallel.sequential import run_sequential
from repro.testing import seed_matrix
from repro.workloads.generators import bursty_stream, churn_stream
from repro.workloads.zipf import zipf_stream


def _state(counter):
    return sorted((e.element, e.count, e.error) for e in counter.entries())


_WORKLOADS = {
    "zipf": lambda seed: zipf_stream(2500, 400, 2.0, seed=seed),
    "bursty": lambda seed: bursty_stream(
        2500, 100, burst_length=120, seed=seed + 1
    ),
    "churn": lambda seed: churn_stream(1500),
}


@pytest.mark.parametrize("seed", seed_matrix(3))
@pytest.mark.parametrize("workload", sorted(_WORKLOADS))
def test_sequential_batched_counter_identical(workload, seed):
    from repro.parallel.base import SchemeConfig

    stream = _WORKLOADS[workload](seed)
    base = run_sequential(stream, SchemeConfig(capacity=48))
    fast = run_sequential(stream, SchemeConfig(capacity=48), batch=64)
    assert fast.counter.processed == base.counter.processed
    assert _state(fast.counter) == _state(base.counter)


def test_sequential_batched_is_cheaper_on_skew():
    stream = zipf_stream(3000, 500, 2.5, seed=5)
    from repro.parallel.base import SchemeConfig

    base = run_sequential(stream, SchemeConfig(capacity=48))
    fast = run_sequential(stream, SchemeConfig(capacity=48), batch=64)
    assert fast.cycles < base.cycles


def test_sequential_batch_validation():
    with pytest.raises(ConfigurationError):
        run_sequential([1, 2, 3], batch=0)
    with pytest.raises(ConfigurationError):
        run_independent([1, 2, 3], batch=-1)


@pytest.mark.parametrize("seed", seed_matrix(6))
def test_independent_batched_counter_and_merges_identical(seed):
    from repro.parallel.base import SchemeConfig

    stream = zipf_stream(3000, 400, 2.0, seed=seed)
    config = SchemeConfig(threads=4, capacity=64)
    base = run_independent(stream, config, merge_every=600)
    fast = run_independent(
        stream, SchemeConfig(threads=4, capacity=64),
        merge_every=600, batch=32,
    )
    # merge rounds must land at the same stream positions, so every
    # intermediate merged summary agrees, not just the final one
    assert len(fast.extras["merge_log"]) == len(base.extras["merge_log"])
    for fast_merge, base_merge in zip(
        fast.extras["merge_log"], base.extras["merge_log"]
    ):
        assert _state(fast_merge) == _state(base_merge)
    assert _state(fast.counter) == _state(base.counter)


def test_independent_batched_is_cheaper_on_skew():
    from repro.parallel.base import SchemeConfig

    stream = zipf_stream(3000, 300, 2.5, seed=7)
    base = run_independent(stream, SchemeConfig(threads=4, capacity=64))
    fast = run_independent(
        stream, SchemeConfig(threads=4, capacity=64), batch=64
    )
    assert fast.cycles < base.cycles
