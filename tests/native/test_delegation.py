"""Real-thread validation of the CoTS delegation protocol."""

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.native.delegation import DelegationCounter, count_with_threads
from repro.workloads import zipf_stream


def test_single_threaded_is_exact():
    counter = DelegationCounter()
    for element in ["a", "b", "a", "a"]:
        counter.process(element)
    assert counter.estimate("a") == 3
    assert counter.estimate("b") == 1
    assert counter.total() == 4


@pytest.mark.parametrize("threads", [2, 4, 8])
def test_parallel_counts_are_exact(threads):
    stream = zipf_stream(20_000, 500, 1.5, seed=threads)
    truth = Counter(stream)
    counter = count_with_threads(stream, threads=threads)
    assert counter.total() == len(stream)
    for element, expected in truth.items():
        assert counter.estimate(element) == expected


def test_heavy_single_element_contention():
    stream = ["hot"] * 50_000
    counter = count_with_threads(stream, threads=8)
    assert counter.estimate("hot") == 50_000
    # under real contention some requests must have been delegated
    # (not guaranteed by the GIL, so only assert non-negative telemetry)
    assert counter.delegated.get() >= 0
    assert counter.bulk_applied.get() >= 0


def test_threads_validation():
    with pytest.raises(ConfigurationError):
        count_with_threads([1], threads=0)


def test_counter_is_reusable_across_runs():
    counter = DelegationCounter()
    count_with_threads([1, 2, 1], threads=2, counter=counter)
    count_with_threads([1], threads=2, counter=counter)
    assert counter.estimate(1) == 3
    assert counter.total() == 4
