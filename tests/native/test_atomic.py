"""Unit tests for the lock-backed atomic primitives."""

import threading

from repro.native.atomic import AtomicInteger, AtomicReference


def test_integer_basics():
    cell = AtomicInteger(5)
    assert cell.get() == 5
    cell.set(7)
    assert cell.get() == 7


def test_add_and_get():
    cell = AtomicInteger(0)
    assert cell.add_and_get(3) == 3
    assert cell.add_and_get(-1) == 2


def test_compare_and_swap():
    cell = AtomicInteger(1)
    assert cell.compare_and_swap(1, 9) is True
    assert cell.get() == 9
    assert cell.compare_and_swap(1, 5) is False
    assert cell.get() == 9


def test_swap():
    cell = AtomicInteger(4)
    assert cell.swap(8) == 4
    assert cell.get() == 8


def test_concurrent_increments_do_not_lose_updates():
    cell = AtomicInteger(0)

    def hammer():
        for _ in range(5000):
            cell.add_and_get(1)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert cell.get() == 40_000


def test_reference_cas_uses_identity():
    a, b = object(), object()
    ref = AtomicReference(a)
    assert ref.compare_and_swap(a, b) is True
    assert ref.get() is b
    assert ref.compare_and_swap(a, b) is False


def test_reference_swap():
    ref = AtomicReference("x")
    assert ref.swap("y") == "x"
    assert ref.get() == "y"
