"""Real-thread validation of the sharded (Independent) design."""

import pytest

from repro.errors import ConfigurationError
from repro.native.sharded import ShardedSpaceSaving
from repro.workloads import zipf_stream


def test_validation():
    with pytest.raises(ConfigurationError):
        ShardedSpaceSaving(0, 10)
    with pytest.raises(ConfigurationError):
        ShardedSpaceSaving(2, 0)


def test_counts_partition_the_stream(skewed_stream):
    sharded = ShardedSpaceSaving(threads=4, capacity=200)
    sharded.count(skewed_stream)
    assert sharded.processed == len(skewed_stream)


def test_merged_finds_heavy_hitters(skewed_stream, exact_skewed):
    sharded = ShardedSpaceSaving(threads=4, capacity=200)
    sharded.count(skewed_stream)
    merged = sharded.merged()
    expected = [element for element, _ in exact_skewed.top_k(3)]
    assert [entry.element for entry in merged.top_k(3)] == expected


def test_merged_estimates_upper_bound_for_heavy(skewed_stream, exact_skewed):
    sharded = ShardedSpaceSaving(threads=6, capacity=300)
    sharded.count(skewed_stream)
    merged = sharded.merged()
    for element, truth in exact_skewed.top_k(5):
        assert merged.estimate(element) >= truth


def test_merged_capacity_override():
    stream = zipf_stream(2000, 200, 1.5, seed=2)
    sharded = ShardedSpaceSaving(threads=3, capacity=50)
    sharded.count(stream)
    merged = sharded.merged(capacity=5)
    assert len(merged) <= 5


def test_count_uses_the_batched_fast_lane(monkeypatch, skewed_stream):
    """count() must drain contiguous blocks via process_many, never the
    per-element process() loop it used before PR 3."""
    from repro.core.space_saving import SpaceSaving

    def forbidden(self, element):
        raise AssertionError("per-element process() lane was used")

    monkeypatch.setattr(SpaceSaving, "process", forbidden)
    sharded = ShardedSpaceSaving(threads=4, capacity=200)
    sharded.count(skewed_stream)
    assert sharded.processed == len(skewed_stream)
