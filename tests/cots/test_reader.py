"""Tests for the interval-query reader thread inside run_cots."""

import pytest

from repro.core.counters import ExactCounter
from repro.cots.framework import CoTSRunConfig, run_cots
from repro.errors import ConfigurationError
from repro.workloads import zipf_stream


def test_reader_collects_interval_snapshots(skewed_stream, exact_skewed):
    result = run_cots(
        skewed_stream,
        CoTSRunConfig(
            threads=8, capacity=64, query_every_cycles=50_000, query_top_k=3
        ),
    )
    log = result.extras["query_log"]
    assert len(log) >= 2
    # cycles strictly increase
    cycles = [snapshot.at_cycle for snapshot in log]
    assert cycles == sorted(cycles)
    # the final snapshot names the true heavy hitters
    expected = [element for element, _ in exact_skewed.top_k(3)]
    assert [element for element, _ in log[-1].top_k] == expected
    # counting stayed intact despite the concurrent reader
    assert result.counter.summary.total_count == len(skewed_stream)


def test_reader_estimates_are_monotone_for_hot_element(exact_skewed, skewed_stream):
    result = run_cots(
        skewed_stream,
        CoTSRunConfig(
            threads=8, capacity=64, query_every_cycles=40_000, query_top_k=1
        ),
    )
    hot = exact_skewed.top_k(1)[0][0]
    # lock-free reads can catch the hot node mid-flight and miss it for
    # one snapshot; monotonicity is asserted over the snapshots that saw it
    counts = [
        observed[hot]
        for snapshot in result.extras["query_log"]
        if hot in (observed := dict(snapshot.top_k))
    ]
    assert len(counts) >= 2
    assert counts == sorted(counts)  # frequencies only ever grow


def test_no_reader_by_default(skewed_stream):
    result = run_cots(skewed_stream, CoTSRunConfig(threads=4, capacity=64))
    assert result.extras["query_log"] == []


def test_query_config_validation():
    with pytest.raises(ConfigurationError):
        CoTSRunConfig(query_every_cycles=-1)
    with pytest.raises(ConfigurationError):
        CoTSRunConfig(query_top_k=0)


def test_reader_on_short_stream_terminates():
    stream = zipf_stream(200, 200, 2.0, seed=2)
    result = run_cots(
        stream,
        CoTSRunConfig(
            threads=4, capacity=32, query_every_cycles=1_000_000
        ),
    )
    # even with an interval longer than the run, the reader exits after
    # its final snapshot and the run terminates
    assert len(result.extras["query_log"]) >= 1
    assert result.counter.summary.total_count == len(stream)
