"""White-box tests of rare protocol paths in the concurrent summary.

These construct specific structure states by hand to drive code paths
that ordinary streams reach only probabilistically: delivery to retired
buckets, destination walks over garbage chains, ownership re-check after
release, and the deferred-overwrite flag machinery.
"""

import pytest

from repro.cots.framework import CoTSFramework, WorkerContext
from repro.cots.requests import AddRequest, IncrementRequest, OverwriteRequest
from repro.cots.summary import ConcurrentBucket, SummaryElement
from repro.errors import ProtocolError
from repro.simcore import CostModel, Engine, MachineSpec


def _framework(capacity=8):
    return CoTSFramework(capacity=capacity, costs=CostModel())


def _run(*programs):
    engine = Engine(machine=MachineSpec(cores=4), costs=CostModel())
    threads = [engine.spawn(p) for p in programs]
    engine.run()
    return threads


def _feed(framework, ctx, elements):
    for element in elements:
        yield from framework.process_element(element, ctx)


def test_deliver_to_retired_bucket_retargets_to_min():
    framework = _framework()
    ctx = WorkerContext("w")
    _run(_feed(framework, ctx, ["a", "b", "b"]))
    summary = framework.summary
    dead = ConcurrentBucket(5)
    dead.gc_marked = True
    entry = framework.table.peek("c")
    assert entry is None

    def program():
        # make 'c' a monitored-element candidate by hand
        centry, _ = yield from framework.table.insert("c")
        yield centry.count.add(1)
        node = SummaryElement("c", 1, 0, centry)
        centry.node = node
        yield from summary.deliver(AddRequest(node), dead, ctx)
        yield from summary.drain_all(ctx)

    _run(program())
    assert summary.stats.get("gc_retargets", 0) >= 1
    assert not dead.queue  # nothing stranded on the dead bucket
    # 'c' landed in the live structure with count 1
    assert {e.element: e.count for e in summary.entries()}["c"] == 1
    summary.check_invariants()


def test_find_dest_unlinks_garbage_chain():
    framework = _framework()
    ctx = WorkerContext("w")
    _run(_feed(framework, ctx, ["a"]))
    summary = framework.summary
    base = summary.min_bucket
    # hand-build a chain of retired buckets after the live base
    g1, g2 = ConcurrentBucket(2), ConcurrentBucket(3)
    g1.gc_marked = g2.gc_marked = True
    g1.next = g2
    base.next = g1

    def program():
        # increment 'a' by 4: the walk must skip/unlink g1 and g2
        entry = framework.table.peek("a")
        yield entry.count.add(1)
        yield from summary.deliver(
            IncrementRequest(entry.node, 4), entry.node.bucket, ctx
        )
        yield from summary.drain_all(ctx)

    _run(program())
    assert summary.stats.get("gc_unlinked", 0) >= 2
    freqs = [bucket.freq for bucket in summary.buckets()]
    assert freqs == [5]
    summary.check_invariants()


def test_overwrite_rerouted_from_stale_bucket():
    framework = _framework(capacity=2)
    ctx = WorkerContext("w")
    _run(_feed(framework, ctx, ["a", "a", "b"]))
    summary = framework.summary
    stale = ConcurrentBucket(1)  # not the live min bucket

    def program():
        centry, _ = yield from framework.table.insert("c")
        yield centry.count.add(1)
        yield from summary.deliver(OverwriteRequest(centry, 1), stale, ctx)
        yield from summary.drain_all(ctx)

    _run(program())
    entries = {e.element: e.count for e in summary.entries()}
    assert "c" in entries  # the overwrite found the real minimum
    assert summary.monitored() == 2
    summary.check_invariants()


def test_owner_recheck_after_release_drains_late_request():
    """A request enqueued exactly between queue-drain and release is
    picked up by the release-time re-check (no lost request)."""
    framework = _framework()
    ctx_a = WorkerContext("a")
    ctx_b = WorkerContext("b")
    # two workers hammering the same two elements interleave constantly;
    # any lost request would break conservation, checked below
    _run(
        _feed(framework, ctx_a, ["x", "y"] * 120),
        _feed(framework, ctx_b, ["y", "x"] * 120),
    )
    assert framework.summary.total_count() == 480
    framework.summary.check_invariants()


def test_defer_flag_cleared_on_membership_change():
    bucket = ConcurrentBucket(3)
    bucket.defer_overwrites = True
    node = SummaryElement("e", 3, 0, entry=None)
    bucket.attach(node)
    assert bucket.defer_overwrites is False
    bucket.defer_overwrites = True
    bucket.detach(node)
    assert bucket.defer_overwrites is False


def test_detach_from_wrong_bucket_raises():
    bucket_a = ConcurrentBucket(1)
    bucket_b = ConcurrentBucket(2)
    node = SummaryElement("e", 1, 0, entry=None)
    bucket_a.attach(node)
    with pytest.raises(ProtocolError):
        bucket_b.detach(node)


def test_increment_retarget_is_a_protocol_error():
    framework = _framework()
    ctx = WorkerContext("w")
    _run(_feed(framework, ctx, ["a"]))
    summary = framework.summary
    dead = ConcurrentBucket(9)
    dead.gc_marked = True
    entry = framework.table.peek("a")

    def program():
        yield entry.count.add(1)
        yield from summary.deliver(
            IncrementRequest(entry.node, 1), dead, ctx
        )

    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())
    engine.spawn(program())
    with pytest.raises(ProtocolError):
        engine.run()
