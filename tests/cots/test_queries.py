"""Unit tests for lock-free query answering over the concurrent summary."""

import pytest

from repro.cots.framework import CoTSFramework, CoTSRunConfig, WorkerContext, run_cots
from repro.cots.queries import (
    frequent_set,
    kth_frequency,
    point_in_top_k,
    point_is_frequent,
    snapshot_frequent,
    snapshot_top_k,
    top_k_set,
)
from repro.errors import QueryError
from repro.simcore import Compute, CostModel, Engine, MachineSpec


def _quiesced_framework(stream, capacity=64):
    result = run_cots(stream, CoTSRunConfig(threads=8, capacity=capacity))
    return result.extras["framework"]


def _ask(framework, query_gen):
    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())
    thread = engine.spawn(query_gen)
    engine.run()
    return thread.stats.return_value


def test_point_is_frequent(skewed_stream, exact_skewed):
    framework = _quiesced_framework(skewed_stream)
    costs = CostModel()
    hot, hot_count = exact_skewed.top_k(1)[0]
    assert _ask(
        framework,
        point_is_frequent(framework.table, hot, hot_count / 2, costs),
    ) is True
    assert _ask(
        framework,
        point_is_frequent(framework.table, "missing", 1, costs),
    ) is False


def test_kth_frequency_matches_snapshot(skewed_stream):
    framework = _quiesced_framework(skewed_stream)
    costs = CostModel()
    k3 = _ask(framework, kth_frequency(framework.summary, 3, costs))
    assert k3 == snapshot_top_k(framework.summary, 3)[-1].count


def test_kth_frequency_validates_k(skewed_stream):
    framework = _quiesced_framework(skewed_stream)
    with pytest.raises(QueryError):
        list(kth_frequency(framework.summary, 0, CostModel()))


def test_point_in_top_k(skewed_stream, exact_skewed):
    framework = _quiesced_framework(skewed_stream)
    costs = CostModel()
    hot = exact_skewed.top_k(1)[0][0]
    assert _ask(
        framework,
        point_in_top_k(framework.table, framework.summary, hot, 3, costs),
    ) is True
    cold = exact_skewed.entries()[-1].element
    assert _ask(
        framework,
        point_in_top_k(framework.table, framework.summary, cold, 2, costs),
    ) is False


def test_frequent_set_matches_host_snapshot(skewed_stream):
    framework = _quiesced_framework(skewed_stream)
    costs = CostModel()
    total = framework.summary.total_count()
    simulated = _ask(
        framework, frequent_set(framework.summary, 0.05 * total, costs)
    )
    host = snapshot_frequent(framework.summary, 0.05)
    assert {e.element for e in simulated} == {e.element for e in host}


def test_top_k_set(skewed_stream, exact_skewed):
    framework = _quiesced_framework(skewed_stream)
    costs = CostModel()
    answer = _ask(framework, top_k_set(framework.summary, 3, costs))
    expected = [element for element, _ in exact_skewed.top_k(3)]
    assert [e.element for e in answer] == expected


def test_snapshot_queries_validate(skewed_stream):
    framework = _quiesced_framework(skewed_stream)
    with pytest.raises(QueryError):
        snapshot_frequent(framework.summary, 0.0)
    with pytest.raises(QueryError):
        snapshot_top_k(framework.summary, 0)


def test_concurrent_readers_see_sane_answers(skewed_stream, exact_skewed):
    """Readers run *during* updates: answers are subsets of plausible
    elements and the final structure is untouched by reading."""
    from repro.cots.framework import _worker
    from repro.simcore import AtomicCell

    costs = CostModel()
    framework = CoTSFramework(capacity=64, costs=costs)
    engine = Engine(machine=MachineSpec(cores=4), costs=costs)
    cursor = AtomicCell(0)
    for index in range(6):
        ctx = WorkerContext(f"w{index}")
        engine.spawn(_worker(framework, skewed_stream, cursor, ctx, 32))
    observed = []

    def reader():
        for _ in range(15):
            answer = yield from top_k_set(framework.summary, 3, costs)
            observed.append([e.element for e in answer])
            yield Compute(30_000, "query")

    engine.spawn(reader(), name="reader")
    engine.run()
    framework.summary.check_invariants()
    assert framework.summary.total_count() == len(skewed_stream)
    # the final reads converge on the true heavy hitters
    expected = [element for element, _ in exact_skewed.top_k(3)]
    assert observed[-1] == expected
