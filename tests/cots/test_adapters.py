"""Unit tests for the Lossy Counting adaptation of CoTS (§5.3)."""

import pytest

from repro.core.counters import ExactCounter
from repro.cots.adapters import LossyCoTSConfig, run_lossy_cots
from repro.errors import ConfigurationError
from repro.workloads import uniform_stream, zipf_stream


def test_config_validation():
    with pytest.raises(ConfigurationError):
        LossyCoTSConfig(epsilon=0.0)
    with pytest.raises(ConfigurationError):
        LossyCoTSConfig(epsilon=1.5)


def test_never_overestimates(skewed_stream, exact_skewed):
    result = run_lossy_cots(
        skewed_stream, LossyCoTSConfig(threads=8, epsilon=0.01)
    )
    for entry in result.counter.entries():
        assert entry.count <= exact_skewed.estimate(entry.element)


def test_frequent_elements_survive(skewed_stream, exact_skewed):
    result = run_lossy_cots(
        skewed_stream, LossyCoTSConfig(threads=8, epsilon=0.005)
    )
    threshold = 0.05 * len(skewed_stream)
    answered = {entry.element for entry in result.counter.entries()}
    for element, truth in exact_skewed.counts().items():
        if truth > threshold:
            assert element in answered


def test_pruning_bounds_memory_under_churn():
    stream = uniform_stream(4000, 4000, seed=9)
    result = run_lossy_cots(stream, LossyCoTSConfig(threads=8, epsilon=0.02))
    assert result.extras["stats"].get("pruned", 0) > 0
    # O((1/eps) log(eps N)) is Lossy Counting's bound; allow slack for the
    # round-granular pruning of the CoTS adaptation
    monitored = result.extras["framework"].summary.monitored()
    assert monitored <= 10 * result.extras["width"]


def test_undercount_bounded(skewed_stream, exact_skewed):
    """Pruning may repeatedly drop an element, but each prune can cost at
    most the current minimum frequency — a small multiple of eps*N."""
    epsilon = 0.01
    result = run_lossy_cots(
        skewed_stream, LossyCoTSConfig(threads=8, epsilon=epsilon)
    )
    for element, truth in exact_skewed.top_k(10):
        estimate = result.counter.estimate(element)
        assert estimate >= truth - 5 * epsilon * len(skewed_stream)


def test_width_matches_epsilon(skewed_stream):
    result = run_lossy_cots(
        skewed_stream, LossyCoTSConfig(threads=4, epsilon=0.02)
    )
    assert result.extras["width"] == 50
    assert result.scheme == "cots-lossy"


@pytest.mark.parametrize("threads", [1, 4, 16])
def test_various_thread_counts(threads):
    stream = zipf_stream(1500, 1500, 2.0, seed=31)
    exact = ExactCounter()
    exact.process_many(stream)
    result = run_lossy_cots(
        stream, LossyCoTSConfig(threads=threads, epsilon=0.01)
    )
    top, truth = exact.top_k(1)[0]
    assert result.counter.estimate(top) <= truth
    assert result.counter.estimate(top) > 0
