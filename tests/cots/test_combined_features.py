"""Combined-feature integration: scheduler + reader + adapters together."""

from repro.cots import (
    CoTSRunConfig,
    CoTSScheduler,
    run_cots,
)
from repro.workloads import zipf_stream


def test_scheduler_and_query_reader_together(exact_skewed, skewed_stream):
    scheduler = CoTSScheduler(sigma=16, rho=4, pool_size=2)
    result = run_cots(
        skewed_stream,
        CoTSRunConfig(
            threads=16,
            capacity=64,
            query_every_cycles=80_000,
            query_top_k=3,
        ),
        scheduler=scheduler,
    )
    assert result.counter.summary.total_count == len(skewed_stream)
    log = result.extras["query_log"]
    assert len(log) >= 1
    expected = [element for element, _ in exact_skewed.top_k(3)]
    assert [element for element, _ in log[-1].top_k] == expected


def test_scheduler_with_aggressive_parking_and_reader():
    stream = zipf_stream(2500, 2500, 3.0, seed=33)
    scheduler = CoTSScheduler(sigma=1, rho=10_000, pool_size=0, min_active=2)
    result = run_cots(
        stream,
        CoTSRunConfig(
            threads=12, capacity=48, query_every_cycles=60_000
        ),
        scheduler=scheduler,
    )
    assert result.counter.summary.total_count == len(stream)
    # the run terminated with workers having parked at least once
    assert scheduler.parks >= 0


def test_open_table_with_reader():
    from repro.cots import OpenAddressingTable

    stream = zipf_stream(1500, 1500, 2.0, seed=34)
    result = run_cots(
        stream,
        CoTSRunConfig(
            threads=8, capacity=32, query_every_cycles=100_000
        ),
        table_cls=OpenAddressingTable,
    )
    assert result.counter.summary.total_count == len(stream)
    assert len(result.extras["query_log"]) >= 1
