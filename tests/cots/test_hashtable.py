"""Unit tests for the cache-conscious delegation hash table."""

import pytest

from repro.cots.hashtable import TOMBSTONE, CoTSHashTable
from repro.errors import ConfigurationError
from repro.simcore import CostModel, Engine, MachineSpec


def _drive(program):
    """Run one generator as a single simulated thread; return its value."""
    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())
    thread = engine.spawn(program)
    engine.run()
    return thread.stats.return_value


def _table(size=16):
    return CoTSHashTable(size, CostModel())


def test_table_validation():
    with pytest.raises(ConfigurationError):
        CoTSHashTable(0, CostModel())
    with pytest.raises(ConfigurationError):
        CoTSHashTable(4, CostModel(), block_entries=0)


def test_lookup_missing_returns_none():
    table = _table()

    def program():
        return (yield from table.lookup("ghost"))

    assert _drive(program()) is None


def test_insert_then_lookup():
    table = _table()

    def program():
        entry, newly = yield from table.insert("a")
        found = yield from table.lookup("a")
        return entry, newly, found

    entry, newly, found = _drive(program())
    assert newly is True
    assert found is entry
    assert table.live_entries == 1


def test_double_insert_returns_existing():
    table = _table()

    def program():
        first, newly1 = yield from table.insert("a")
        second, newly2 = yield from table.insert("a")
        return first, newly1, second, newly2

    first, newly1, second, newly2 = _drive(program())
    assert newly1 is True
    assert newly2 is False
    assert first is second
    assert table.live_entries == 1


def test_try_remove_idle_entry_succeeds():
    table = _table()

    def program():
        entry, _ = yield from table.insert("a")
        claimed = yield from table.try_remove(entry)
        found = yield from table.lookup("a")
        return entry, claimed, found

    entry, claimed, found = _drive(program())
    assert claimed is True
    assert entry.deleted is True
    assert entry.count.peek() == TOMBSTONE
    assert found is None
    assert table.live_entries == 0


def test_try_remove_busy_entry_fails():
    table = _table()

    def program():
        entry, _ = yield from table.insert("a")
        yield entry.count.add(1)  # someone owns it
        claimed = yield from table.try_remove(entry)
        return claimed

    assert _drive(program()) is False


def test_tombstones_garbage_collected_on_chain_insert():
    table = CoTSHashTable(1, CostModel())  # everything in one chain

    def program():
        entry, _ = yield from table.insert("a")
        yield from table.try_remove(entry)
        yield from table.insert("b")
        return None

    _drive(program())
    assert table.garbage_collected == 1
    assert table.max_chain_length() == 1  # the tombstone was reclaimed


def test_chain_blocks_share_cache_lines():
    table = CoTSHashTable(1, CostModel(), block_entries=2)

    def program():
        entries = []
        for name in "abcd":
            entry, _ = yield from table.insert(name)
            entries.append(entry)
        return entries

    entries = _drive(program())
    assert entries[0].count.line is entries[1].count.line
    assert entries[2].count.line is entries[3].count.line
    assert entries[0].count.line is not entries[2].count.line


def test_peek_and_live_iteration():
    table = _table()

    def program():
        yield from table.insert("x")
        yield from table.insert("y")
        return None

    _drive(program())
    assert table.peek("x") is not None
    assert table.peek("nope") is None
    assert {entry.element for entry in table.live()} == {"x", "y"}


def test_concurrent_inserts_of_same_element_deduplicate():
    table = CoTSHashTable(1, CostModel())
    results = []
    engine = Engine(machine=MachineSpec(cores=4), costs=CostModel())

    def program():
        entry, newly = yield from table.insert("hot")
        results.append((entry, newly))

    for _ in range(4):
        engine.spawn(program())
    engine.run()
    entries = {id(entry) for entry, _ in results}
    assert len(entries) == 1  # single physical entry
    assert sum(1 for _, newly in results if newly) == 1
    assert table.live_entries == 1
