"""Property-based tests of the whole CoTS system (hypothesis).

These are the strongest correctness statements in the repository: for an
arbitrary small stream and arbitrary thread/capacity configuration, the
simulated concurrent execution must conserve every count, keep the
structure sorted, and respect Space Saving's error bounds — i.e. the
parallel execution is indistinguishable (in summary semantics) from
*some* sequential Space Saving execution of the same multiset.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cots.framework import CoTSRunConfig, run_cots

_streams = st.lists(
    st.integers(min_value=0, max_value=12), min_size=1, max_size=120
)
_threads = st.integers(min_value=1, max_value=12)
_capacities = st.integers(min_value=2, max_value=10)


@given(stream=_streams, threads=_threads, capacity=_capacities)
@settings(max_examples=80, deadline=None)
def test_conservation_and_invariants(stream, threads, capacity):
    result = run_cots(
        stream,
        CoTSRunConfig(threads=threads, capacity=capacity, batch=4),
    )
    summary = result.extras["framework"].summary
    # check=True in run_cots already asserted these; re-assert explicitly
    assert summary.total_count() == len(stream)
    assert summary.monitored() <= capacity
    summary.check_invariants()


@given(stream=_streams, threads=_threads, capacity=_capacities)
@settings(max_examples=80, deadline=None)
def test_space_saving_bounds_hold(stream, threads, capacity):
    result = run_cots(
        stream,
        CoTSRunConfig(threads=threads, capacity=capacity, batch=4),
    )
    truth = Counter(stream)
    for entry in result.counter.entries():
        assert entry.count >= truth[entry.element]
        assert entry.count - entry.error <= truth[entry.element]


@given(stream=_streams, threads=_threads, capacity=_capacities)
@settings(max_examples=50, deadline=None)
def test_min_freq_error_bound(stream, threads, capacity):
    result = run_cots(
        stream,
        CoTSRunConfig(threads=threads, capacity=capacity, batch=4),
    )
    assert result.counter.max_error() <= len(stream) / capacity


@given(stream=_streams, threads=_threads, capacity=_capacities)
@settings(max_examples=40, deadline=None)
def test_all_hash_gates_released(stream, threads, capacity):
    """At quiescence no element is still owned (counts are 0 or removed)."""
    result = run_cots(
        stream,
        CoTSRunConfig(threads=threads, capacity=capacity, batch=4),
    )
    table = result.extras["framework"].table
    for entry in table.live():
        assert entry.count.peek() == 0
