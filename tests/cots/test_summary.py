"""Unit tests for the Concurrent Stream Summary protocol pieces."""

import pytest

from repro.cots.framework import CoTSFramework, WorkerContext
from repro.cots.requests import AddRequest, IncrementRequest, OverwriteRequest
from repro.cots.summary import ConcurrentBucket, SummaryElement
from repro.errors import ProtocolError
from repro.simcore import CostModel, Engine, MachineSpec


def _run(framework, *programs):
    engine = Engine(machine=MachineSpec(cores=4), costs=CostModel())
    threads = [engine.spawn(p) for p in programs]
    engine.run()
    return threads


def _process(framework, ctx, elements):
    for element in elements:
        yield from framework.process_element(element, ctx)


def test_single_element_creates_genesis_bucket():
    framework = CoTSFramework(capacity=4, costs=CostModel())
    ctx = WorkerContext("w")
    _run(framework, _process(framework, ctx, ["a"]))
    summary = framework.summary
    assert summary.min_bucket is not None
    assert summary.min_bucket.freq == 1
    assert summary.total_count() == 1
    summary.check_invariants()


def test_increment_moves_element_up():
    framework = CoTSFramework(capacity=4, costs=CostModel())
    ctx = WorkerContext("w")
    _run(framework, _process(framework, ctx, ["a", "a", "a", "b"]))
    summary = framework.summary
    entries = {e.element: e.count for e in summary.entries()}
    assert entries == {"a": 3, "b": 1}
    assert summary.min_bucket.freq == 1
    summary.check_invariants()


def test_overwrite_when_capacity_exhausted():
    framework = CoTSFramework(capacity=2, costs=CostModel())
    ctx = WorkerContext("w")
    _run(framework, _process(framework, ctx, ["a", "a", "b", "c"]))
    summary = framework.summary
    entries = {e.element: (e.count, e.error) for e in summary.entries()}
    assert "c" in entries
    assert entries["c"] == (2, 1)  # min(=1) + 1, error = min
    assert "b" not in entries
    assert summary.monitored() == 2
    assert summary.total_count() == 4
    summary.check_invariants()


def test_buckets_stay_sorted_and_gc_runs():
    framework = CoTSFramework(capacity=8, costs=CostModel())
    ctx = WorkerContext("w")
    stream = ["a"] * 5 + ["b"] * 3 + ["c"] * 1 + ["a"] * 2
    _run(framework, _process(framework, ctx, stream))
    summary = framework.summary
    freqs = [bucket.freq for bucket in summary.buckets()]
    assert freqs == sorted(freqs)
    assert summary.stats.get("gc_buckets", 0) > 0
    summary.check_invariants()


def test_delegation_accumulates_bulk_increments():
    framework = CoTSFramework(capacity=8, costs=CostModel())
    contexts = [WorkerContext(f"w{i}") for i in range(4)]
    hot = ["hot"] * 50
    _run(
        framework,
        *[_process(framework, ctx, hot) for ctx in contexts],
    )
    summary = framework.summary
    assert summary.total_count() == 200
    assert {e.element: e.count for e in summary.entries()} == {"hot": 200}
    assert summary.stats.get("bulk_increments", 0) > 0
    summary.check_invariants()


def test_deferred_overwrites_eventually_complete():
    """Overwrites targeting busy victims retry and land (Algorithm 6)."""
    framework = CoTSFramework(capacity=2, costs=CostModel())
    contexts = [WorkerContext(f"w{i}") for i in range(3)]
    streams = [
        ["a", "a", "b"] * 10,
        ["b", "a", "a"] * 10,
        ["c", "d", "e", "f"] * 6,   # constant churn through the min bucket
    ]
    _run(
        framework,
        *[
            _process(framework, ctx, stream)
            for ctx, stream in zip(contexts, streams)
        ],
    )
    summary = framework.summary
    assert summary.total_count() == sum(len(s) for s in streams)
    assert summary.monitored() == 2
    summary.check_invariants()


def test_increment_to_wrong_bucket_raises():
    framework = CoTSFramework(capacity=4, costs=CostModel())
    ctx = WorkerContext("w")
    _run(framework, _process(framework, ctx, ["a", "b"]))
    summary = framework.summary
    node = summary.table.peek("a").node
    wrong = ConcurrentBucket(99)

    def bad():
        yield wrong.owner.cas(0, 1)
        yield from summary._process_increment(
            IncrementRequest(node, 1), wrong, ctx
        )

    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())
    engine.spawn(bad())
    with pytest.raises(ProtocolError):
        engine.run()


def test_check_invariants_detects_unsorted_buckets():
    framework = CoTSFramework(capacity=4, costs=CostModel())
    ctx = WorkerContext("w")
    _run(framework, _process(framework, ctx, ["a", "a", "b"]))
    summary = framework.summary
    # sabotage: swap bucket frequencies
    summary.min_bucket.freq = 100
    with pytest.raises(ProtocolError):
        summary.check_invariants()


def test_to_space_saving_snapshot(skewed_stream):
    framework = CoTSFramework(capacity=32, costs=CostModel())
    ctx = WorkerContext("w")
    _run(framework, _process(framework, ctx, skewed_stream[:500]))
    snapshot = framework.summary.to_space_saving()
    assert snapshot.processed == 500
    assert snapshot.summary.total_count == 500
    snapshot.summary.check_invariants()
