"""Stress tests for the CoTS framework under adversarial workloads.

The randomized workloads are parametrized over
:func:`repro.testing.seed_matrix`: the default run uses the historical
seeds, ``REPRO_TEST_SEEDS`` sweeps the same tests across more random
universes.  Every run is judged by the shared schedcheck auditor, not
just by ad-hoc assertions.
"""

import pytest

from repro.core.counters import ExactCounter
from repro.cots.framework import CoTSRunConfig, run_cots
from repro.schedcheck.auditor import EXACT, audit_concurrent_summary, audit_counts
from repro.testing import seed_matrix
from repro.workloads import bursty_stream, churn_stream, interleave, zipf_stream


def _audited(stream, config):
    """run_cots + the full shared audit (structure and semantics)."""
    result = run_cots(stream, config)
    framework = result.extras["framework"]
    audit_concurrent_summary(framework.summary)
    audit_counts(result.counter, list(stream), "cots", EXACT)
    return result


def test_tiny_capacity_heavy_churn():
    """Capacity 2 with an all-distinct stream: one overwrite per element."""
    stream = churn_stream(800)
    result = _audited(stream, CoTSRunConfig(threads=12, capacity=2))
    stats = result.extras["stats"]
    assert stats.get("overwrites", 0) > 500
    assert result.counter.summary.total_count == len(stream)


def test_tombstone_races_are_survivable():
    """Interleave churn (constant tryRemove traffic) with hot repeats so
    stale-entry races can occur; correctness must hold either way."""
    hot = ["hot"] * 1500
    cold = churn_stream(1500)
    stream = interleave([hot, cold])
    result = _audited(stream, CoTSRunConfig(threads=24, capacity=4, batch=2))
    stats = result.extras["stats"]
    assert result.counter.summary.total_count == len(stream)
    assert stats.get("tombstone_races", 0) >= 0  # races allowed, never fatal
    # the hot element must survive all the churn around it
    assert result.counter.estimate("hot") >= 1500


@pytest.mark.parametrize("seed", seed_matrix(3))
def test_bursty_hot_set_rotation(seed):
    """The hot element changes every burst; ownership chains must migrate."""
    stream = bursty_stream(
        4000, alphabet=2000, burst_length=400, hot_fraction=0.85, seed=seed
    )
    exact = ExactCounter()
    exact.process_many(stream)
    result = _audited(stream, CoTSRunConfig(threads=16, capacity=64))
    assert result.counter.summary.total_count == len(stream)
    for element, truth in exact.top_k(5):
        assert result.counter.estimate(element) >= truth


def test_many_threads_tiny_stream():
    """More threads than elements: most workers claim nothing and exit."""
    result = _audited(
        ["a", "b", "a"], CoTSRunConfig(threads=64, capacity=8)
    )
    assert result.counter.estimate("a") == 2
    assert result.counter.estimate("b") == 1


@pytest.mark.parametrize("seed", seed_matrix(6))
def test_gc_statistics_accumulate_under_skew(seed):
    stream = zipf_stream(3000, 3000, 3.0, seed=seed)
    result = _audited(stream, CoTSRunConfig(threads=16, capacity=64))
    stats = result.extras["stats"]
    # the hot element's unique counts churn top buckets constantly
    assert stats.get("gc_buckets", 0) > 100
    assert stats.get("gc_unlinked", 0) > 0


def test_alternating_two_hot_elements():
    """Two elements trading places exercises bucket hand-off heavily."""
    stream = ["x", "y"] * 1500
    result = _audited(stream, CoTSRunConfig(threads=16, capacity=8))
    assert result.counter.estimate("x") == 1500
    assert result.counter.estimate("y") == 1500


@pytest.mark.parametrize("seed", seed_matrix(8))
@pytest.mark.parametrize("batch", [1, 2, 8, 64])
def test_batch_sizes_agree(batch, seed):
    stream = zipf_stream(1000, 1000, 2.0, seed=seed)
    result = _audited(
        stream, CoTSRunConfig(threads=8, capacity=32, batch=batch)
    )
    assert result.counter.summary.total_count == len(stream)
