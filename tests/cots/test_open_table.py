"""Tests for the open-addressing search structure (§5.2.1's rejected design)."""

import pytest

from repro.cots.framework import CoTSRunConfig, run_cots
from repro.cots.open_table import OpenAddressingTable
from repro.errors import ConfigurationError
from repro.simcore import CostModel, Engine, MachineSpec
from repro.workloads import churn_stream, zipf_stream


def _drive(program):
    engine = Engine(machine=MachineSpec(cores=1), costs=CostModel())
    thread = engine.spawn(program)
    engine.run()
    return thread.stats.return_value


def test_validation():
    with pytest.raises(ConfigurationError):
        OpenAddressingTable(2, CostModel())
    with pytest.raises(ConfigurationError):
        OpenAddressingTable(16, CostModel(), max_load=0.99)


def test_insert_lookup_roundtrip():
    table = OpenAddressingTable(16, CostModel())

    def program():
        entry, newly = yield from table.insert("a")
        found = yield from table.lookup("a")
        missing = yield from table.lookup("b")
        return entry, newly, found, missing

    entry, newly, found, missing = _drive(program())
    assert newly is True
    assert found is entry
    assert missing is None


def test_duplicate_insert_returns_existing():
    table = OpenAddressingTable(16, CostModel())

    def program():
        first, _ = yield from table.insert("x")
        second, newly = yield from table.insert("x")
        return first, second, newly

    first, second, newly = _drive(program())
    assert first is second
    assert newly is False
    assert table.live_entries == 1


def test_remove_leaves_tombstone_until_rehash():
    table = OpenAddressingTable(16, CostModel(), max_load=0.5)

    def program():
        entry, _ = yield from table.insert("victim")
        claimed = yield from table.try_remove(entry)
        return claimed

    assert _drive(program()) is True
    assert table.dead_entries == 1
    assert table.live_entries == 0


def test_churn_forces_rehashes():
    """Insert/delete cycling accumulates tombstones and triggers rehashes
    — the exact behaviour the paper rejects open addressing for."""
    table = OpenAddressingTable(16, CostModel(), max_load=0.5)

    def program():
        for round_ in range(50):
            entry, _ = yield from table.insert(f"e{round_}")
            yield from table.try_remove(entry)

    _drive(program())
    assert table.rehashes > 0
    assert table.rehash_cycles > 0


def test_grows_when_genuinely_full():
    table = OpenAddressingTable(8, CostModel(), max_load=0.6)

    def program():
        for index in range(20):
            yield from table.insert(f"live{index}")

    _drive(program())
    assert table.size > 8
    assert table.live_entries == 20
    assert {e.element for e in table.live()} == {f"live{i}" for i in range(20)}


def test_cots_runs_correctly_on_open_table():
    stream = zipf_stream(1200, 1200, 2.0, seed=17)
    result = run_cots(
        stream,
        CoTSRunConfig(threads=8, capacity=32),
        table_cls=OpenAddressingTable,
    )
    assert result.counter.summary.total_count == len(stream)


def test_churn_penalizes_open_table_vs_chained():
    """Under eviction churn the chained table wins (the paper's argument)."""
    stream = churn_stream(1000)

    chained = run_cots(stream, CoTSRunConfig(threads=8, capacity=16))
    open_run = run_cots(
        stream,
        CoTSRunConfig(threads=8, capacity=16, table_size=64),
        table_cls=OpenAddressingTable,
    )
    table = open_run.extras["framework"].table
    assert table.rehashes > 0
    assert open_run.seconds > chained.seconds
    # and both count correctly regardless
    assert open_run.counter.summary.total_count == len(stream)
    assert chained.counter.summary.total_count == len(stream)
