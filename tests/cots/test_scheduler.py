"""Unit tests for the σ/ρ dynamic auto-configuration (§5.2.3)."""

import pytest

from repro.cots.framework import CoTSRunConfig, run_cots
from repro.cots.scheduler import CoTSScheduler
from repro.errors import ConfigurationError
from repro.workloads import zipf_stream


def test_scheduler_validation():
    with pytest.raises(ConfigurationError):
        CoTSScheduler(sigma=0)
    with pytest.raises(ConfigurationError):
        CoTSScheduler(rho=0)
    with pytest.raises(ConfigurationError):
        CoTSScheduler(pool_size=-1)


def test_counts_stay_exact_with_scheduler_enabled():
    stream = zipf_stream(3000, 3000, 2.5, seed=21)
    scheduler = CoTSScheduler(sigma=8, rho=2, pool_size=2)
    result = run_cots(
        stream,
        CoTSRunConfig(threads=16, capacity=64),
        scheduler=scheduler,
    )
    assert result.counter.summary.total_count == len(stream)


def test_helpers_wake_under_bucket_congestion():
    """A tiny rho plus heavy one-bucket traffic must trigger helper wakes."""
    stream = ["hot"] * 2000 + list(range(500))
    scheduler = CoTSScheduler(sigma=10_000, rho=1, pool_size=3)
    result = run_cots(
        stream,
        CoTSRunConfig(threads=24, capacity=64),
        scheduler=scheduler,
    )
    assert scheduler.wakes > 0
    assert result.counter.summary.total_count == len(stream)


def test_workers_park_under_congestion():
    """A tiny sigma forces workers back into the pool."""
    stream = zipf_stream(3000, 3000, 3.0, seed=22)
    scheduler = CoTSScheduler(sigma=1, rho=10_000, pool_size=0, min_active=2)
    result = run_cots(
        stream,
        CoTSRunConfig(threads=16, capacity=64),
        scheduler=scheduler,
    )
    assert scheduler.parks > 0
    assert result.counter.summary.total_count == len(stream)


def test_parked_workers_released_at_stream_end():
    """No deadlock: the last finishing worker stops all parked siblings."""
    stream = zipf_stream(1500, 1500, 3.0, seed=23)
    scheduler = CoTSScheduler(sigma=1, rho=10_000, pool_size=1, min_active=1)
    result = run_cots(
        stream,
        CoTSRunConfig(threads=8, capacity=32),
        scheduler=scheduler,
    )
    assert result.counter.summary.total_count == len(stream)


def test_scheduler_observability_counters():
    scheduler = CoTSScheduler(sigma=4, rho=2, pool_size=2)
    stream = zipf_stream(2000, 2000, 2.5, seed=24)
    run_cots(
        stream,
        CoTSRunConfig(threads=16, capacity=48),
        scheduler=scheduler,
    )
    assert scheduler.parks >= 0
    assert scheduler.wakes >= 0
    assert scheduler.helper_drains >= 0
