"""Tests for the Sample-and-Hold adaptation of CoTS (§5.3)."""

import pytest

from repro.cots.adapters import SampleHoldCoTSConfig, run_sample_hold_cots
from repro.errors import ConfigurationError
from repro.workloads import uniform_stream, zipf_stream


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SampleHoldCoTSConfig(sample_rate=0.0)
    with pytest.raises(ConfigurationError):
        SampleHoldCoTSConfig(sample_rate=2.0)


def test_conservation_counted_plus_unsampled(skewed_stream):
    result = run_sample_hold_cots(
        skewed_stream,
        SampleHoldCoTSConfig(threads=8, capacity=64, sample_rate=0.1),
    )
    summary = result.extras["framework"].summary
    assert summary.total_count() + result.extras["unsampled"] == len(
        skewed_stream
    )


def test_rate_one_equals_exact_counting(skewed_stream, exact_skewed):
    result = run_sample_hold_cots(
        skewed_stream,
        SampleHoldCoTSConfig(threads=8, capacity=64, sample_rate=1.0),
    )
    assert result.extras["unsampled"] == 0
    for element, truth in exact_skewed.top_k(5):
        assert result.counter.estimate(element) == truth


def test_never_overestimates(skewed_stream, exact_skewed):
    result = run_sample_hold_cots(
        skewed_stream,
        SampleHoldCoTSConfig(threads=8, capacity=64, sample_rate=0.05),
    )
    for entry in result.counter.entries():
        assert entry.count <= exact_skewed.estimate(entry.element)


def test_low_rate_drops_most_of_a_uniform_stream():
    stream = uniform_stream(2000, 2000, seed=4)
    result = run_sample_hold_cots(
        stream,
        SampleHoldCoTSConfig(threads=8, capacity=64, sample_rate=0.01),
    )
    assert result.extras["unsampled"] > 1500


def test_hot_element_held_after_admission():
    stream = zipf_stream(3000, 3000, 3.0, seed=6)
    result = run_sample_hold_cots(
        stream,
        SampleHoldCoTSConfig(threads=16, capacity=64, sample_rate=0.05),
    )
    hot_count = stream.count(0)
    estimate = result.counter.estimate(0)
    assert 0 < estimate <= hot_count
    # held exactly after an early admission: most of the mass captured
    assert estimate > hot_count / 2


@pytest.mark.parametrize("threads", [1, 4, 24])
def test_thread_counts_conserve(threads):
    stream = zipf_stream(1200, 1200, 2.0, seed=8)
    result = run_sample_hold_cots(
        stream,
        SampleHoldCoTSConfig(
            threads=threads, capacity=48, sample_rate=0.2
        ),
    )
    summary = result.extras["framework"].summary
    assert summary.total_count() + result.extras["unsampled"] == len(stream)
