"""The pre-aggregated batch-claim fast lane of the CoTS driver."""

from repro.cots.framework import CoTSRunConfig, run_cots
from repro.workloads.zipf import zipf_stream


def _run(preaggregate, stream, threads=8, capacity=64):
    return run_cots(
        stream,
        CoTSRunConfig(
            threads=threads,
            capacity=capacity,
            preaggregate=preaggregate,
        ),
    )


def test_preaggregate_conserves_counts_and_invariants():
    stream = zipf_stream(3000, 800, 2.0, seed=5)
    result = _run(True, stream)
    # run_cots(check=True) already asserts conservation + invariants;
    # double-check the queryable totals here
    assert result.counter.processed == len(stream)
    total = sum(e.count for e in result.counter.entries())
    assert total == len(stream)


def test_preaggregate_estimates_upper_bound_truth():
    stream = zipf_stream(3000, 800, 2.0, seed=6)
    truth = {}
    for element in stream:
        truth[element] = truth.get(element, 0) + 1
    result = _run(True, stream)
    for entry in result.counter.entries():
        assert entry.count >= truth.get(entry.element, 0)
        assert entry.count - entry.error <= truth.get(entry.element, 0)


def test_preaggregate_is_deterministic():
    stream = zipf_stream(2000, 500, 2.0, seed=7)
    first = _run(True, stream)
    second = _run(True, stream)
    assert first.cycles == second.cycles
    assert [
        (e.element, e.count, e.error) for e in first.counter.entries()
    ] == [(e.element, e.count, e.error) for e in second.counter.entries()]


def test_preaggregate_is_faster_on_skew():
    stream = zipf_stream(3000, 800, 2.0, seed=8)
    base = _run(False, stream)
    pre = _run(True, stream)
    assert pre.cycles < base.cycles
    stats = pre.extras["stats"]
    assert stats.get("bulk_crossings", 0) > 0


def test_preaggregate_top_elements_match_per_element_run():
    stream = zipf_stream(3000, 800, 2.0, seed=9)
    base = _run(False, stream)
    pre = _run(True, stream)
    base_top = {e.element for e in base.counter.top_k(5)}
    pre_top = {e.element for e in pre.counter.top_k(5)}
    # both must surface the same unambiguous heavy hitters
    truth = {}
    for element in stream:
        truth[element] = truth.get(element, 0) + 1
    heavy = {
        element
        for element, count in truth.items()
        if count > len(stream) // 50
    }
    assert heavy <= base_top
    assert heavy <= pre_top
