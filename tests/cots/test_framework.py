"""Integration-level tests of the CoTS framework driver."""

import pytest

from repro.core.counters import ExactCounter
from repro.cots.framework import CoTSRunConfig, run_cots
from repro.errors import ConfigurationError
from repro.schedcheck.auditor import (
    EXACT,
    audit_concurrent_summary,
    audit_counts,
)
from repro.workloads import churn_stream, uniform_stream, zipf_stream


@pytest.mark.parametrize("threads", [1, 2, 4, 16, 48])
@pytest.mark.parametrize("alpha", [1.2, 2.0, 3.0])
def test_count_conservation_across_configs(threads, alpha):
    stream = zipf_stream(1200, 1200, alpha, seed=13)
    result = run_cots(
        stream, CoTSRunConfig(threads=threads, capacity=48)
    )
    # run_cots(check=True) already verified conservation + invariants;
    # the shared auditor additionally checks the semantic bounds
    audit_counts(result.counter, list(stream), "cots", EXACT)
    assert result.counter.summary.total_count == len(stream)
    assert result.elements == len(stream)


def test_estimates_upper_bound_truth(skewed_stream, exact_skewed):
    result = run_cots(skewed_stream, CoTSRunConfig(threads=8, capacity=64))
    audit_concurrent_summary(result.extras["framework"].summary)
    audit_counts(result.counter, list(skewed_stream), "cots", EXACT)
    for element, truth in exact_skewed.top_k(10):
        assert result.counter.estimate(element) >= truth


def test_estimate_minus_error_lower_bounds_truth(skewed_stream, exact_skewed):
    result = run_cots(skewed_stream, CoTSRunConfig(threads=8, capacity=64))
    for entry in result.counter.entries():
        assert entry.guaranteed <= exact_skewed.estimate(entry.element)


def test_capacity_respected_under_churn():
    stream = churn_stream(600)  # every element distinct: maximal eviction
    result = run_cots(stream, CoTSRunConfig(threads=6, capacity=16))
    assert len(result.counter) <= 16
    assert result.counter.summary.total_count == len(stream)


def test_uniform_stream_correctness():
    stream = uniform_stream(1500, 300, seed=3)
    result = run_cots(stream, CoTSRunConfig(threads=8, capacity=64))
    assert result.counter.summary.total_count == len(stream)


def test_exact_counts_when_alphabet_fits(exact_skewed, skewed_stream):
    distinct = len(exact_skewed)
    result = run_cots(
        skewed_stream,
        CoTSRunConfig(threads=8, capacity=distinct + 10),
    )
    for element, truth in exact_skewed.counts().items():
        assert result.counter.estimate(element) == truth


def test_determinism_same_config(skewed_stream):
    def trial():
        result = run_cots(
            skewed_stream[:800], CoTSRunConfig(threads=8, capacity=32)
        )
        return result.cycles, dict(result.counter.counts())

    assert trial() == trial()


def test_stats_exposed(skewed_stream):
    result = run_cots(skewed_stream, CoTSRunConfig(threads=8, capacity=64))
    stats = result.extras["stats"]
    assert stats["processed"] == len(skewed_stream)
    assert "delegations" in stats or stats.get("delegated_elements", 0) >= 0


def test_more_threads_raise_throughput_on_skew():
    stream = zipf_stream(4000, 4000, 2.5, seed=5)
    few = run_cots(stream, CoTSRunConfig(threads=4, capacity=64))
    many = run_cots(stream, CoTSRunConfig(threads=32, capacity=64))
    assert many.seconds < few.seconds


def test_batch_validation():
    with pytest.raises(ConfigurationError):
        CoTSRunConfig(batch=0)


def test_empty_stream():
    result = run_cots([], CoTSRunConfig(threads=4, capacity=8))
    assert result.counter.summary.total_count == 0
    assert result.elements == 0


def test_single_element_stream():
    result = run_cots(["x"], CoTSRunConfig(threads=4, capacity=8))
    assert result.counter.estimate("x") == 1
