"""The metric-catalogue checker: recorded names must stay documented."""

import pathlib
import sys

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_metrics  # noqa: E402


def test_repo_static_scan_is_clean(capsys):
    # the CI gate's cheap half: every call-site literal resolves
    assert check_metrics.main(["--static-only"]) == 0
    assert "all resolve" in capsys.readouterr().out


def test_static_scan_finds_known_call_sites():
    emissions = check_metrics.scan_source()
    names = {e.name for e in emissions}
    # a plain literal, a multi-line call, and an f-string template
    assert "cots.queue.depth" in names
    assert "mp.queue.occupancy" in names
    assert "mp.worker.0.items" in names       # {index} hole substituted
    kinds = {e.name: e.kind for e in emissions}
    assert kinds["cots.queue.depth"] == "histogram"
    assert all(":" in e.where for e in emissions)


def test_check_flags_unknown_names_and_kind_mismatches():
    failures = check_metrics.check([
        check_metrics.Emission("core.spacesaving.occurrences", "counter",
                               "ok.py:1"),
        check_metrics.Emission("core.spacesaving.bogus", "counter",
                               "bad.py:2"),
        check_metrics.Emission("cots.queue.depth", "counter", "bad.py:3"),
    ])
    assert len(failures) == 2
    assert "no METRIC_SPECS entry" in failures[0]
    assert "catalogued as histogram" in failures[1]


def test_main_exits_nonzero_on_drift(tmp_path, monkeypatch, capsys):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "rogue.py").write_text(
        'def f(registry, i):\n'
        '    registry.counter("core.rogue.widgets").inc(1)\n'
        '    registry.gauge(f"mp.worker.{i}.frobs").set(2)\n'
    )
    monkeypatch.setattr(check_metrics, "SRC_ROOT", src)
    assert check_metrics.main(["--static-only"]) == 1
    err = capsys.readouterr().out
    assert "core.rogue.widgets" in err
    assert "mp.worker.0.frobs" in err
    assert "rogue.py:2" in err


def test_smoke_run_names_all_resolve():
    emissions, serve_snapshot = check_metrics.smoke_run()
    assert emissions
    assert check_metrics.check(emissions) == []
    runs = {e.where for e in emissions}
    assert len(runs) == 9                     # all nine smoke layers recorded
    assert "runtime (scenario run)" in runs
    assert "runtime (scenario-fuzz run)" in runs
    assert "runtime (serve run)" in runs
    # the serve snapshot feeds the Prometheus exposition audit
    assert serve_snapshot["counters"]
    assert check_metrics.check_prometheus(serve_snapshot) == []


def test_alert_rules_resolve_against_catalogue():
    assert check_metrics.check_alert_rules() == []


def test_prometheus_audit_flags_malformed_exposition():
    failures = check_metrics.check_prometheus(
        {"counters": {"serve.ingest.events": 3}, "gauges": {},
         "histograms": {}},
        text='repro_serve_ingest_events_total 3\n',
    )
    # samples without a TYPE line must be flagged
    assert any("no TYPE" in f for f in failures)
