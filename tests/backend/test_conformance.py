"""One conformance suite, every backend in the registry.

This is the acceptance gate of PR 8's tentpole: the sequential,
simulated-CoTS, native-thread, both multiprocess modes and the sketch
engines all pass the *same* protocol contract — incremental ingest,
snapshot completeness, estimate/error-bound semantics, idempotent
close.  Anything added to ``repro.backend.registry`` is tested here
automatically.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.backend import (
    BACKEND_NAMES,
    SKETCH_BACKENDS,
    Snapshot,
    create_backend,
)
from repro.errors import BackendError
from repro.workloads import zipf_stream

#: Count Sketch is unbiased (not one-sided); its estimates may dip
#: below truth, so the upper-bound assertions skip it.
ONE_SIDED = tuple(n for n in BACKEND_NAMES if n != "sketch-cs-vec")


@pytest.fixture(scope="module")
def conformance_stream():
    return zipf_stream(6000, 3000, 1.6, seed=23)


@pytest.fixture(scope="module")
def conformance_truth(conformance_stream):
    return Counter(conformance_stream)


def _make(name):
    return create_backend(
        name, capacity=96, threads=2, workers=2,
        chunk_elements=512, timeout=60.0,
    )


@pytest.fixture(params=BACKEND_NAMES)
def driven(request, conformance_stream):
    """A backend of every registered kind, fed the stream in batches."""
    backend = _make(request.param)
    try:
        for index in range(0, len(conformance_stream), 1000):
            batch = conformance_stream[index:index + 1000]
            assert backend.ingest(batch) == len(batch)
        yield request.param, backend
    finally:
        backend.close()


class TestProtocolConformance:
    def test_snapshot_reflects_every_ingest(self, driven,
                                            conformance_stream):
        name, backend = driven
        snap = backend.snapshot()
        assert isinstance(snap, Snapshot)
        assert snap.scheme == name
        assert snap.processed == len(conformance_stream)
        assert snap.error_bound >= 0

    def test_entries_sorted_and_bounded(self, driven):
        _, backend = driven
        snap = backend.snapshot()
        counts = [entry.count for entry in snap.entries]
        assert counts == sorted(counts, reverse=True)
        assert len(snap.entries) <= 96

    def test_query_is_topk_prefix(self, driven):
        _, backend = driven
        snap = backend.snapshot()
        assert backend.query(5) == snap.top_k(5) == snap.entries[:5]

    def test_estimates_upper_bound_truth(self, driven,
                                         conformance_truth):
        name, backend = driven
        if name not in ONE_SIDED:
            pytest.skip("count sketch estimates are unbiased, not "
                        "one-sided")
        snap = backend.snapshot()
        heavy = [e for e, _ in conformance_truth.most_common(10)]
        for element in heavy:
            estimate = backend.estimate(element)
            truth = conformance_truth[element]
            assert estimate >= truth
            assert estimate <= truth + max(snap.error_bound, 1) * 2

    def test_count_minus_error_lower_bounds_truth(self, driven,
                                                  conformance_truth):
        name, backend = driven
        if name not in ONE_SIDED:
            pytest.skip("count sketch carries no additive L1 bound")
        for entry in backend.snapshot().entries:
            assert (entry.count - entry.error
                    <= conformance_truth[entry.element])

    def test_heavy_hitter_recalled(self, driven, conformance_truth):
        _, backend = driven
        top_element, _ = conformance_truth.most_common(1)[0]
        reported = [entry.element for entry in backend.query(10)]
        assert top_element in reported

    def test_close_is_idempotent_and_final(self, driven):
        _, backend = driven
        backend.close()
        backend.close()
        with pytest.raises(BackendError):
            backend.ingest([1, 2, 3])


class TestIncrementalSnapshots:
    """Snapshots between ingests must already reflect prior batches."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_processed_grows_with_each_batch(self, name):
        backend = _make(name)
        try:
            seen = 0
            for batch in ([1] * 40 + [2] * 20, ["x"] * 30, [3, "x", 3]):
                backend.ingest(batch)
                seen += len(batch)
                assert backend.snapshot().processed == seen
        finally:
            backend.close()

    @pytest.mark.parametrize("name", sorted(set(ONE_SIDED)))
    def test_point_estimate_tracks_batches(self, name):
        backend = _make(name)
        try:
            backend.ingest(["hh"] * 50 + ["noise", "other"])
            assert backend.estimate("hh") >= 50
            backend.ingest(["hh"] * 25)
            assert backend.estimate("hh") >= 75
        finally:
            backend.close()


def test_registry_rejects_unknown_names():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        create_backend("no-such-backend")


def test_sketch_names_are_registered():
    for name in SKETCH_BACKENDS:
        assert name in BACKEND_NAMES
