"""Hypothesis property tests of the mergeable-summary algebra.

Pins the three contracts ``repro.backend.algebra`` advertises for every
summary kind: merge dominance (the merged estimate never drops below
either part's), monotone error-bound widening, and bit-exact
serialize/deserialize round-trips.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.algebra import (
    deserialize,
    error_bound,
    merge,
    serialize,
    widen,
)
from repro.core.sketches.count_min import CountMinSketch
from repro.core.sketches.count_sketch import CountSketch
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError

_elements = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.text(alphabet="abcdef", min_size=1, max_size=3),
)
_streams = st.lists(_elements, min_size=0, max_size=250)
_seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _space_saving(stream, capacity=12):
    counter = SpaceSaving(capacity=capacity)
    counter.process_many(stream)
    return counter


def _count_min(stream, seed):
    sketch = CountMinSketch(epsilon=0.02, delta=0.1, seed=seed)
    sketch.process_many(stream)
    return sketch


def _count_sketch(stream, seed):
    sketch = CountSketch(width=128, depth=3, seed=seed)
    sketch.process_many(stream)
    return sketch


class TestMergeDominance:
    @given(left=_streams, right=_streams)
    @settings(max_examples=100, deadline=None)
    def test_space_saving_merge_dominates_parts(self, left, right):
        a, b = _space_saving(left), _space_saving(right)
        merged = merge(a, b)
        truth = Counter(left) + Counter(right)
        assert merged.processed == len(left) + len(right)
        for element, true_count in truth.items():
            estimate = merged.estimate(element)
            if estimate:
                assert estimate >= true_count - merged.max_error()

    @given(left=_streams, right=_streams, seed=_seeds)
    @settings(max_examples=60, deadline=None)
    def test_count_min_merge_dominates_parts(self, left, right, seed):
        a = CountMinSketch(epsilon=0.02, delta=0.1, seed=seed)
        b = CountMinSketch(epsilon=0.02, delta=0.1, seed=seed)
        # merge requires aligned codecs: pre-register the union
        # vocabulary in one shared order, as one distributed codec would
        for key in dict.fromkeys(list(left) + list(right)):
            a.codec.encode_one(key)
            b.codec.encode_one(key)
        a.process_many(left)
        b.process_many(right)
        merged = merge(a, b)
        truth = Counter(left) + Counter(right)
        assert merged.processed == len(left) + len(right)
        for element, true_count in truth.items():
            assert merged.estimate(element) >= true_count
            assert merged.estimate(element) >= a.estimate(element)
            assert merged.estimate(element) >= b.estimate(element)

    @given(left=_streams, right=_streams, seed=_seeds)
    @settings(max_examples=60, deadline=None)
    def test_count_sketch_merge_is_additive(self, left, right, seed):
        a = CountSketch(width=128, depth=3, seed=seed)
        b = CountSketch(width=128, depth=3, seed=seed)
        for key in dict.fromkeys(list(left) + list(right)):
            a.codec.encode_one(key)
            b.codec.encode_one(key)
        a.process_many(left)
        b.process_many(right)
        merged = merge(a, b)
        assert np.array_equal(merged.table, a.table + b.table)
        assert merged.processed == len(left) + len(right)

    @given(stream=_streams, seed=_seeds)
    @settings(max_examples=30, deadline=None)
    def test_cross_kind_merge_rejected(self, stream, seed):
        counter = _space_saving(stream)
        sketch = _count_min(stream, seed)
        for left, right in ((counter, sketch), (sketch, counter)):
            try:
                merge(left, right)
            except ConfigurationError:
                pass
            else:
                raise AssertionError("cross-kind merge must raise")


class TestWidening:
    @given(stream=_streams, slacks=st.lists(
        st.integers(min_value=0, max_value=40), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_space_saving_widening_is_monotone(self, stream, slacks):
        summary = _space_saving(stream)
        previous = error_bound(summary)
        for slack in slacks:
            summary = widen(summary, slack)
            bound = error_bound(summary)
            assert bound >= previous
            previous = bound

    @given(stream=_streams, seed=_seeds, slacks=st.lists(
        st.integers(min_value=0, max_value=40), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_count_min_widening_is_monotone_and_pure(self, stream, seed,
                                                     slacks):
        summary = _count_min(stream, seed)
        original_bound = error_bound(summary)
        original_table = summary.table.copy()
        widened = summary
        previous = original_bound
        for slack in slacks:
            widened = widen(widened, slack)
            bound = error_bound(widened)
            assert bound == previous + slack
            assert np.array_equal(widened.table, original_table)
            previous = bound
        # purity: the source summary never moved
        assert error_bound(summary) == original_bound

    @given(stream=_streams, seed=_seeds)
    @settings(max_examples=30, deadline=None)
    def test_widened_estimates_still_upper_bound_truth(self, stream,
                                                       seed):
        summary = widen(_count_min(stream, seed), 17)
        for element, true_count in Counter(stream).items():
            assert summary.estimate(element) >= true_count

    def test_negative_slack_rejected(self):
        try:
            widen(_space_saving([1, 2, 3]), -1)
        except ConfigurationError:
            pass
        else:
            raise AssertionError("negative slack must raise")


class TestRoundTrip:
    @given(stream=_streams)
    @settings(max_examples=80, deadline=None)
    def test_space_saving_round_trip(self, stream):
        summary = _space_saving(stream)
        restored = deserialize(serialize(summary))
        assert serialize(restored) == serialize(summary)
        assert restored.processed == summary.processed
        for entry in summary.entries():
            assert restored.estimate(entry.element) == entry.count

    @given(stream=_streams, seed=_seeds)
    @settings(max_examples=60, deadline=None)
    def test_count_min_round_trip_bit_exact(self, stream, seed):
        summary = _count_min(stream, seed)
        doc = serialize(summary)
        restored = deserialize(doc)
        assert np.array_equal(restored.table, summary.table)
        assert serialize(restored) == doc
        for element in set(stream):
            assert restored.estimate(element) == summary.estimate(element)

    @given(stream=_streams, seed=_seeds)
    @settings(max_examples=60, deadline=None)
    def test_count_sketch_round_trip_bit_exact(self, stream, seed):
        summary = _count_sketch(stream, seed)
        doc = serialize(summary)
        restored = deserialize(doc)
        assert np.array_equal(restored.table, summary.table)
        assert serialize(restored) == doc
        for element in set(stream):
            assert restored.estimate(element) == summary.estimate(element)

    @given(left=_streams, right=_streams, seed=_seeds)
    @settings(max_examples=40, deadline=None)
    def test_merge_commutes_with_round_trip(self, left, right, seed):
        a = CountMinSketch(epsilon=0.02, delta=0.1, seed=seed)
        b = CountMinSketch(epsilon=0.02, delta=0.1, seed=seed)
        for key in dict.fromkeys(list(left) + list(right)):
            a.codec.encode_one(key)
            b.codec.encode_one(key)
        a.process_many(left)
        b.process_many(right)
        direct = merge(a, b)
        via_wire = merge(deserialize(serialize(a)),
                         deserialize(serialize(b)))
        assert np.array_equal(direct.table, via_wire.table)
