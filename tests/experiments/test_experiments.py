"""Tests for the experiment drivers, config and reporting (tiny scale)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentScale,
    STREAMS,
    StreamCache,
    fig3a,
    fig11,
    format_series,
    format_table,
    table2,
)
from repro.experiments.runner import ExperimentResult


@pytest.fixture(scope="module")
def tiny():
    return ExperimentScale.tiny()


def test_scale_presets_valid():
    for preset in (ExperimentScale.tiny, ExperimentScale.default,
                   ExperimentScale.large):
        scale = preset()
        assert scale.capacity > 0
        assert scale.query_interval(10_000) == 100


def test_scale_validation():
    with pytest.raises(ConfigurationError):
        ExperimentScale(
            name="bad",
            profile_stream=0,
            sweep_base=1,
            fig11_stream=1,
            table2_stream=1,
            capacity=1,
            naive_threads=(1,),
            cots_threads=(4,),
        )
    with pytest.raises(ConfigurationError):
        ExperimentScale(
            name="bad",
            profile_stream=10,
            sweep_base=1,
            fig11_stream=1,
            table2_stream=1,
            capacity=1,
            naive_threads=(1,),
            cots_threads=(4,),
            query_fraction=0.0,
        )


def test_stream_cache_reuses_lists():
    cache = StreamCache()
    a = cache.get(100, 50, 2.0, seed=1)
    b = cache.get(100, 50, 2.0, seed=1)
    assert a is b
    cache.clear()
    c = cache.get(100, 50, 2.0, seed=1)
    assert c is not a
    assert c == a


def test_all_experiments_registry_is_complete():
    assert set(ALL_EXPERIMENTS) == {
        "fig3a", "fig3b", "fig4", "fig5", "fig6", "fig7",
        "fig11", "fig12", "table2", "lean_camp",
    }


def test_lean_camp_supplement(tiny):
    from repro.experiments import lean_camp

    result = lean_camp(tiny)
    machines = set(result.column_values("machine"))
    assert len(machines) == 2
    # every row carries positive throughput on both machines
    assert all(row["throughput_meps"] > 0 for row in result.rows)


def test_fig3a_rows_structure(tiny):
    result = fig3a(tiny)
    assert result.experiment_id == "fig3a"
    assert set(result.columns) <= set(result.rows[0])
    expected_rows = len(tiny.alphas_naive) * len(tiny.naive_threads)
    assert len(result.rows) == expected_rows
    # the 1-thread speedup is 1.0 by definition
    for alpha in tiny.alphas_naive:
        first = result.filtered(alpha=alpha, threads=tiny.naive_threads[0])
        assert first[0]["speedup"] == pytest.approx(1.0)


def test_fig11_baseline_is_four_threads(tiny):
    result = fig11(tiny)
    for alpha in tiny.alphas_cots:
        base = result.filtered(alpha=alpha, threads=tiny.cots_threads[0])
        assert base[0]["speedup"] == pytest.approx(1.0)
    assert all(row["throughput_meps"] > 0 for row in result.rows)


def test_table2_columns(tiny):
    result = table2(tiny)
    assert len(result.rows) == len(tiny.alphas_naive)
    for row in result.rows:
        assert row["sequential_s"] > 0
        assert row["shared_s"] > row["sequential_s"]
        assert row["cots_threads"] in tiny.cots_threads


def test_result_filtering_helpers():
    result = ExperimentResult(
        experiment_id="x",
        title="t",
        columns=["a", "b"],
        rows=[{"a": 1, "b": 2}, {"a": 1, "b": 3}, {"a": 2, "b": 4}],
    )
    assert result.column_values("b") == [2, 3, 4]
    assert result.filtered(a=1) == [{"a": 1, "b": 2}, {"a": 1, "b": 3}]
    assert result.filtered(a=1, b=3) == [{"a": 1, "b": 3}]


def test_format_table_and_series():
    result = ExperimentResult(
        experiment_id="demo",
        title="Demo table",
        columns=["alpha", "threads", "speedup"],
        rows=[
            {"alpha": 2.0, "threads": 1, "speedup": 1.0},
            {"alpha": 2.0, "threads": 2, "speedup": 1.9},
        ],
        notes="a note",
    )
    table = format_table(result)
    assert "Demo table" in table
    assert "speedup" in table
    assert "note: a note" in table
    series = format_series(result, "threads", "speedup")
    assert "alpha=2.0" in series
    assert "1.9" in series
