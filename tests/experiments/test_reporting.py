"""Unit tests for the reporting helpers (tables, series, charts)."""

from repro.experiments import ascii_chart
from repro.experiments.runner import ExperimentResult


def _result():
    return ExperimentResult(
        experiment_id="demo",
        title="Demo",
        columns=["alpha", "threads", "speedup"],
        rows=[
            {"alpha": 2.0, "threads": 1, "speedup": 1.0},
            {"alpha": 2.0, "threads": 4, "speedup": 2.0},
            {"alpha": 2.0, "threads": 8, "speedup": 4.0},
            {"alpha": 3.0, "threads": 1, "speedup": 1.0},
            {"alpha": 3.0, "threads": 8, "speedup": 8.0},
        ],
    )


def test_chart_contains_axes_and_legend():
    chart = ascii_chart(_result(), "threads", "speedup", width=30, height=8)
    lines = chart.splitlines()
    assert "a=alpha:2.0" in lines[0]
    assert "b=alpha:3.0" in lines[0]
    assert lines[-2].startswith("+")
    assert "threads: 1 .. 8" in lines[-1]
    assert "speedup: 1 .. 8" in lines[-1]


def test_chart_has_requested_dimensions():
    chart = ascii_chart(_result(), "threads", "speedup", width=30, height=8)
    lines = chart.splitlines()
    # title + height rows + axis + range line
    assert len(lines) == 1 + 8 + 1 + 1
    assert all(len(line) == 31 for line in lines[1:9])  # '|' + width


def test_chart_places_extreme_points():
    chart = ascii_chart(_result(), "threads", "speedup", width=20, height=6)
    rows = chart.splitlines()[1:7]
    # the max point (threads=8, speedup=8, group b) sits top-right
    assert rows[0].rstrip().endswith("b")
    # a minimum point sits in the bottom row
    assert "a" in rows[-1] or "b" in rows[-1]


def test_chart_empty_result():
    empty = ExperimentResult("x", "t", ["a"], [])
    assert ascii_chart(empty, "a", "a") == "(nothing to plot)"


def test_chart_single_point_degenerate_ranges():
    single = ExperimentResult(
        "x", "t", ["alpha", "threads", "speedup"],
        [{"alpha": 2.0, "threads": 4, "speedup": 1.0}],
    )
    chart = ascii_chart(single, "threads", "speedup")
    assert "a=alpha:2.0" in chart
