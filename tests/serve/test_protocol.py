"""Unit tests for the serve wire-protocol codec.

Two halves: every typed request survives an encode -> decode round
trip unchanged, and every malformed-frame family is rejected with the
documented machine-readable error code.
"""

import json

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    INNER_KINDS,
    OPS,
    QUERY_KINDS,
    FlushRequest,
    IngestRequest,
    IntervalRequest,
    PingRequest,
    QueryRequest,
    QuerySpec,
    StatsRequest,
    SubscribeRequest,
    UnsubscribeRequest,
    WireProtocolError,
    decode_request,
    encode_frame,
    encode_request,
    error_payload,
    is_push,
    request_wire,
)

# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
ROUND_TRIP_REQUESTS = [
    IngestRequest(events=("a", "b", 3)),
    IngestRequest(events=("x",), id="req-1"),
    QueryRequest(spec=QuerySpec(kind="point", element="a")),
    QueryRequest(spec=QuerySpec(kind="point", element=7, phi=0.01, k=5), id=9),
    QueryRequest(spec=QuerySpec(kind="set", elements=("a", "b"))),
    QueryRequest(spec=QuerySpec(kind="set", phi=0.05), id="s"),
    QueryRequest(spec=QuerySpec(kind="topk", k=10)),
    IntervalRequest(inner=QuerySpec(kind="topk", k=3), every=100, id="iv"),
    IntervalRequest(inner=QuerySpec(kind="point", element="hot"), every=1),
    SubscribeRequest(inner=QuerySpec(kind="topk", k=5), period=0.5, id="cq"),
    SubscribeRequest(inner=QuerySpec(kind="set", phi=0.1), period=2.0),
    UnsubscribeRequest(subscription="sub-1", id=1),
    FlushRequest(id="f"),
    StatsRequest(),
    PingRequest(id=0),
]


@pytest.mark.parametrize(
    "request_", ROUND_TRIP_REQUESTS,
    ids=[type(r).__name__ + "-" + str(i) for i, r in enumerate(ROUND_TRIP_REQUESTS)],
)
def test_encode_decode_round_trip(request_):
    frame = encode_request(request_)
    assert frame.endswith(b"\n") and frame.count(b"\n") == 1
    assert decode_request(frame) == request_
    # str input decodes identically to bytes input
    assert decode_request(frame.decode("utf-8")) == request_


def test_singular_event_alias():
    decoded = decode_request(b'{"op": "ingest", "event": "x"}\n')
    assert decoded == IngestRequest(events=("x",))


def test_request_wire_is_plain_json():
    wire = request_wire(IntervalRequest(inner=QuerySpec(kind="topk", k=2), every=7))
    assert wire == {"op": "query", "kind": "interval",
                    "inner": {"kind": "topk", "k": 2}, "every": 7}
    # must survive a JSON round trip byte-for-byte
    assert json.loads(encode_frame(wire)) == wire


def test_encode_frame_is_one_compact_line():
    frame = encode_frame({"ok": True, "id": 1})
    assert frame == b'{"ok":true,"id":1}\n'


# ----------------------------------------------------------------------
# Rejections: every malformed family carries its documented code
# ----------------------------------------------------------------------
def _code_of(raw) -> str:
    with pytest.raises(WireProtocolError) as excinfo:
        decode_request(raw)
    assert excinfo.value.code in ERROR_CODES
    return excinfo.value.code


def test_bad_json():
    assert _code_of(b"not json at all\n") == "bad-json"
    assert _code_of(b'{"op": "ping"') == "bad-json"
    assert _code_of(b"\xff\xfe invalid utf8") == "bad-json"


def test_bad_frame_non_object():
    assert _code_of(b"[1, 2, 3]\n") == "bad-frame"
    assert _code_of(b'"just a string"\n') == "bad-frame"
    assert _code_of(b"42\n") == "bad-frame"


def test_unknown_op():
    assert _code_of(b'{"op": "nope"}\n') == "unknown-op"
    assert _code_of(b'{"kind": "topk", "k": 3}\n') == "unknown-op"
    assert _code_of(b'{"op": 7}\n') == "unknown-op"


@pytest.mark.parametrize("raw", [
    # ingest
    b'{"op": "ingest"}',
    b'{"op": "ingest", "events": []}',
    b'{"op": "ingest", "events": "abc"}',
    b'{"op": "ingest", "events": [1.5]}',
    b'{"op": "ingest", "events": [true]}',
    # query shell
    b'{"op": "query"}',
    b'{"op": "query", "kind": "median"}',
    # point
    b'{"op": "query", "kind": "point"}',
    b'{"op": "query", "kind": "point", "element": [1]}',
    b'{"op": "query", "kind": "point", "element": "a", "phi": 1.5}',
    b'{"op": "query", "kind": "point", "element": "a", "phi": 0}',
    b'{"op": "query", "kind": "point", "element": "a", "k": 0}',
    b'{"op": "query", "kind": "point", "element": "a", "k": true}',
    # set
    b'{"op": "query", "kind": "set"}',
    b'{"op": "query", "kind": "set", "elements": []}',
    b'{"op": "query", "kind": "set", "elements": [null]}',
    # topk
    b'{"op": "query", "kind": "topk"}',
    b'{"op": "query", "kind": "topk", "k": "ten"}',
    # interval
    b'{"op": "query", "kind": "interval", "every": 5}',
    b'{"op": "query", "kind": "interval", "inner": {"kind": "topk", "k": 1}}',
    b'{"op": "query", "kind": "interval", "inner": {"kind": "topk", "k": 1}, "every": 0}',
    b'{"op": "query", "kind": "interval", "inner": {"kind": "interval"}, "every": 5}',
    # subscribe
    b'{"op": "subscribe", "period": 1}',
    b'{"op": "subscribe", "inner": {"kind": "topk", "k": 1}}',
    b'{"op": "subscribe", "inner": {"kind": "topk", "k": 1}, "period": 0}',
    b'{"op": "subscribe", "inner": {"kind": "topk", "k": 1}, "period": true}',
    # unsubscribe
    b'{"op": "unsubscribe"}',
    b'{"op": "unsubscribe", "subscription": ""}',
    b'{"op": "unsubscribe", "subscription": 7}',
    # id
    b'{"op": "ping", "id": [1]}',
    b'{"op": "ping", "id": 1.5}',
])
def test_bad_request(raw):
    assert _code_of(raw) == "bad-request"


def test_unknown_error_code_rejected_at_construction():
    with pytest.raises(ValueError):
        WireProtocolError("made-up-code", "boom")


# ----------------------------------------------------------------------
# Response helpers
# ----------------------------------------------------------------------
def test_error_payload_shape():
    payload = error_payload("backpressure", "budget full", request_id="r1")
    assert payload == {"ok": False, "error": "backpressure",
                       "message": "budget full", "id": "r1"}
    assert "id" not in error_payload("bad-json", "nope")


def test_is_push_discriminates_frame_species():
    assert is_push({"push": "sub-1", "seq": 1, "kind": "topk"})
    assert not is_push({"ok": True, "id": 1})
    assert not is_push({"ok": False, "error": "bad-request", "message": "m"})


def test_documented_constants_are_consistent():
    assert set(INNER_KINDS) < set(QUERY_KINDS)
    assert "interval" in QUERY_KINDS and "interval" not in INNER_KINDS
    assert len(OPS) == len(set(OPS))
    assert len(ERROR_CODES) == len(set(ERROR_CODES))
