"""The serve-bench latency cross-check (satellite of the live plane).

``latency_crosscheck`` derives the same samples two ways — exact order
statistics and the TIME_BUCKETS histogram estimator live consumers see
— and flags when they land more than one bucket apart.  Fed from one
sample list the two can only diverge if the quantile math itself is
wrong, so these tests are a tripwire around that math.
"""

import random

from repro.obs.registry import TIME_BUCKETS
from repro.serve.bench import latency_crosscheck


def test_crosscheck_agrees_on_single_bucket_load():
    # everything in the (0.001, 0.005] bucket
    samples = [0.002 + 0.0001 * i for i in range(50)]
    result = latency_crosscheck(samples)
    assert result["ok"] is True
    assert set(result) == {
        "ok", "sampled_p50_s", "hist_p50_s", "sampled_p99_s", "hist_p99_s",
    }
    assert 0.001 < result["sampled_p50_s"] <= 0.005
    assert 0.001 < result["hist_p50_s"] <= 0.005


def test_crosscheck_agrees_on_spread_load():
    rng = random.Random(42)
    samples = [rng.uniform(0.0002, 0.2) for _ in range(500)]
    result = latency_crosscheck(samples)
    assert result["ok"] is True
    # both estimators are recorded so the report carries the evidence
    assert result["sampled_p99_s"] > result["sampled_p50_s"]
    assert result["hist_p99_s"] > result["hist_p50_s"]


def test_crosscheck_overflow_bucket():
    # beyond the highest bound: the histogram clamps, still within one
    # bucket of the sampled truth's bucket index
    samples = [TIME_BUCKETS[-1] * 3] * 20
    result = latency_crosscheck(samples)
    assert result["ok"] is True
    assert result["hist_p50_s"] == TIME_BUCKETS[-1]


def test_crosscheck_empty_samples_is_ok():
    result = latency_crosscheck([])
    assert result["ok"] is True
    assert result["hist_p50_s"] is None and result["hist_p99_s"] is None
