"""End-to-end tests for the asyncio serve tier.

Every test boots a real :class:`StreamServer` on an ephemeral port,
talks to it over genuine TCP, and shuts it down — all inside
``asyncio.run`` so no async test plugin is needed.  The accuracy test
checks served answers against an exact ``Counter`` ground truth and
against a sequential reference backend fed the identical stream, which
pins the read-barrier semantics of ``flush``: everything acknowledged
before the flush is queryable (and correct) after it.
"""

import asyncio
import collections
import json
import time

from repro.backend import create_backend
from repro.obs.registry import MetricsRegistry
from repro.serve import ServeConfig, StreamServer, is_push
from repro.workloads import zipf_stream

TIMEOUT = 30.0


class _Client:
    """A tiny NDJSON test client; pushes are collected, not returned."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.pushes = []

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def read_frame(self):
        line = await asyncio.wait_for(self.reader.readline(), TIMEOUT)
        assert line, "server closed the connection mid-read"
        return json.loads(line)

    async def request(self, obj):
        self.writer.write(json.dumps(obj).encode() + b"\n")
        await self.writer.drain()
        while True:
            payload = await self.read_frame()
            if is_push(payload):
                self.pushes.append(payload)
                continue
            return payload

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _run(coro):
    asyncio.run(asyncio.wait_for(coro, TIMEOUT))


# ----------------------------------------------------------------------
# Accuracy: served answers match a sequential reference within epsilon*N
# ----------------------------------------------------------------------
def test_end_to_end_accuracy_against_sequential_reference():
    capacity = 64
    stream = zipf_stream(length=4000, alphabet=500, alpha=1.5, seed=11)
    truth = collections.Counter(stream)

    reference = create_backend("sequential", capacity=capacity)
    try:
        reference.ingest(stream)
        ref_snapshot = reference.snapshot()
    finally:
        reference.close()

    async def main():
        config = ServeConfig(
            port=0, backend="sequential", capacity=capacity,
            batch_events=256, batch_interval=0.01, snapshot_interval=0.05,
        )
        async with StreamServer(config) as server:
            client = await _Client.connect(server.port)

            for start in range(0, len(stream), 500):
                reply = await client.request(
                    {"op": "ingest", "events": stream[start:start + 500]}
                )
                assert reply["ok"], reply
                assert reply["accepted"] == len(stream[start:start + 500])

            # the read barrier: after flush, everything acked is visible
            flushed = await client.request({"op": "flush"})
            assert flushed["ok"] and flushed["processed"] == len(stream)
            bound = flushed["error_bound"]
            assert bound == ref_snapshot.error_bound

            # top-k matches the reference exactly: same engine, same order
            top = await client.request({"op": "query", "kind": "topk", "k": 10})
            assert top["ok"] and top["processed"] == len(stream)
            assert 0 <= top["staleness"] <= config.staleness_bound + 1.0
            expected = [
                {"element": e.element, "count": e.count, "error": e.error}
                for e in ref_snapshot.top_k(10)
            ]
            assert top["results"] == expected

            # point estimates honour the Space Saving guarantee vs truth
            hot = [element for element, _ in truth.most_common(20)]
            cold = ["absent-%d" % i for i in range(5)]
            for element in hot + cold:
                reply = await client.request(
                    {"op": "query", "kind": "point", "element": element}
                )
                assert reply["ok"], reply
                exact = truth.get(element, 0)
                if reply["monitored"]:
                    assert exact <= reply["count"] <= exact + bound
                    assert reply["count"] - reply["error"] <= exact
                else:
                    assert exact <= bound
                assert reply["count"] == reference_estimate(ref_snapshot, element, bound)

            # set + membership forms answer from the same snapshot
            reply = await client.request(
                {"op": "query", "kind": "point", "element": hot[0],
                 "phi": 0.001, "k": 3}
            )
            assert reply["frequent"] is True and reply["in_top_k"] is True

            await client.close()

    def reference_estimate(snapshot, element, bound):
        for entry in snapshot.entries:
            if entry.element == element:
                return entry.count
        return bound

    _run(main())


# ----------------------------------------------------------------------
# Backpressure: the structural budget refuses what it cannot absorb
# ----------------------------------------------------------------------
def test_backpressure_flood_is_refused_not_dropped():
    async def main():
        metrics = MetricsRegistry()
        config = ServeConfig(
            port=0, backend="sequential", capacity=32,
            batch_events=4, max_pending_batches=2,
            batch_interval=0.01, snapshot_interval=0.05,
        )
        async with StreamServer(config, metrics=metrics) as server:
            client = await _Client.connect(server.port)

            # a frame needing more slots than the whole budget is refused
            flood = ["e%d" % i for i in range(64)]
            reply = await client.request({"op": "ingest", "events": flood,
                                          "id": "flood"})
            assert reply["ok"] is False
            assert reply["error"] == "backpressure"
            assert reply["id"] == "flood"

            # a frame within budget is accepted — refusal, not breakage
            reply = await client.request({"op": "ingest", "events": ["a", "b"]})
            assert reply["ok"] is True

            # refused events are metered as flow control, never as
            # protocol errors (the CI gate counts the latter)
            counters = metrics.snapshot()["counters"]
            assert counters["serve.ingest.rejected"] == 64
            assert counters["serve.protocol.errors"] == 0

            # nothing was silently dropped: only the accepted events land
            flushed = await client.request({"op": "flush"})
            assert flushed["processed"] == 2

            stats = (await client.request({"op": "stats"}))["stats"]
            assert stats["queue_depth"] <= config.max_pending_batches
            assert stats["accepted_events"] == 2

            await client.close()

    _run(main())


# ----------------------------------------------------------------------
# Subscriptions: continuous (period) and interval (every) pushes
# ----------------------------------------------------------------------
def test_subscribe_pushes_and_unsubscribe():
    async def main():
        config = ServeConfig(
            port=0, backend="sequential", capacity=32,
            batch_events=8, batch_interval=0.01, snapshot_interval=0.02,
        )
        async with StreamServer(config) as server:
            client = await _Client.connect(server.port)
            await client.request({"op": "ingest", "events": ["x"] * 6 + ["y"]})

            reply = await client.request({
                "op": "subscribe",
                "inner": {"kind": "topk", "k": 2},
                "period": 0.02,
            })
            assert reply["ok"]
            sub_id = reply["subscription"]

            # collect pushes off the wire until two have arrived
            while len(client.pushes) < 2:
                payload = await client.read_frame()
                if is_push(payload):
                    client.pushes.append(payload)
            first, second = client.pushes[:2]
            assert first["push"] == sub_id and second["push"] == sub_id
            assert second["seq"] > first["seq"]
            assert first["kind"] == "topk"
            assert {r["element"] for r in first["results"]} <= {"x", "y"}

            reply = await client.request(
                {"op": "unsubscribe", "subscription": sub_id}
            )
            assert reply["ok"] and reply["unsubscribed"] == sub_id

            # cancelling twice is the documented error, not a crash
            reply = await client.request(
                {"op": "unsubscribe", "subscription": sub_id}
            )
            assert reply["ok"] is False
            assert reply["error"] == "unknown-subscription"

            await client.close()

    _run(main())


def test_unsubscribe_requires_owning_connection():
    async def main():
        config = ServeConfig(
            port=0, backend="sequential", capacity=32,
            batch_events=8, batch_interval=0.01, snapshot_interval=0.02,
        )
        async with StreamServer(config) as server:
            owner = await _Client.connect(server.port)
            reply = await owner.request({
                "op": "subscribe",
                "inner": {"kind": "topk", "k": 2},
                "period": 0.02,
            })
            assert reply["ok"]
            sub_id = reply["subscription"]

            # sub ids are sequential and guessable; another connection
            # must not be able to cancel someone else's feed with one
            intruder = await _Client.connect(server.port)
            reply = await intruder.request(
                {"op": "unsubscribe", "subscription": sub_id}
            )
            assert reply["ok"] is False
            assert reply["error"] == "unknown-subscription"
            await intruder.close()

            # the subscription survived the attempt: pushes keep coming
            while not owner.pushes:
                payload = await owner.read_frame()
                if is_push(payload):
                    owner.pushes.append(payload)
            assert owner.pushes[0]["push"] == sub_id

            # and the registering connection can still cancel it
            reply = await owner.request(
                {"op": "unsubscribe", "subscription": sub_id}
            )
            assert reply["ok"] and reply["unsubscribed"] == sub_id
            await owner.close()

    _run(main())


def test_interval_query_pushes_after_every_events():
    async def main():
        config = ServeConfig(
            port=0, backend="sequential", capacity=32,
            batch_events=8, batch_interval=0.01, snapshot_interval=0.02,
        )
        async with StreamServer(config) as server:
            client = await _Client.connect(server.port)

            reply = await client.request({
                "op": "query", "kind": "interval",
                "inner": {"kind": "point", "element": "x"},
                "every": 5, "id": "iv",
            })
            # the first answer rides on the registration response
            assert reply["ok"] and reply["id"] == "iv"
            assert reply["kind"] == "point" and "count" in reply
            sub_id = reply["subscription"]

            await client.request({"op": "ingest", "events": ["x"] * 6})
            # flush refreshes the view and fires interval subscriptions
            await client.request({"op": "flush"})

            while not client.pushes:
                payload = await client.read_frame()
                if is_push(payload):
                    client.pushes.append(payload)
            push = client.pushes[0]
            assert push["push"] == sub_id
            assert push["kind"] == "point" and push["count"] >= 6

            await client.close()

    _run(main())


# ----------------------------------------------------------------------
# Ingest accounting: exactly-once under concurrent flush, and a flusher
# that survives a backend failure instead of wedging the queue
# ----------------------------------------------------------------------
def test_concurrent_flush_and_ingest_count_exactly_once():
    """Concurrent flushes + the ticker must never re-queue or drop a
    pending batch while a ``queue.put`` is suspended on a full budget
    (the batch leaves ``_pending`` before the await)."""
    async def main():
        config = ServeConfig(
            port=0, backend="sequential", capacity=64,
            batch_events=4, max_pending_batches=1,
            batch_interval=0.005, snapshot_interval=0.02,
        )
        async with StreamServer(config) as server:
            # slow the backend so the one-slot queue stays full and
            # flush's queue.put genuinely suspends mid-drain
            real_ingest = server._backend.ingest

            def slow_ingest(batch):
                time.sleep(0.002)
                real_ingest(batch)

            server._backend.ingest = slow_ingest
            sent = 0

            async def worker(tag):
                nonlocal sent
                client = await _Client.connect(server.port)
                for i in range(25):
                    events = ["%s-%d-%d" % (tag, i, j) for j in range(3)]
                    while True:
                        reply = await client.request(
                            {"op": "ingest", "events": events}
                        )
                        if reply["ok"]:
                            break
                        assert reply["error"] == "backpressure"
                        await asyncio.sleep(0.003)
                    sent += len(events)
                    if i % 5 == 0:
                        assert (await client.request({"op": "flush"}))["ok"]
                await client.close()

            await asyncio.gather(*(worker(tag) for tag in ("a", "b", "c")))

            control = await _Client.connect(server.port)
            flushed = await control.request({"op": "flush"})
            assert flushed["ok"] and flushed["processed"] == sent
            stats = (await control.request({"op": "stats"}))["stats"]
            assert stats["accepted_events"] == sent
            assert stats["processed"] == sent
            await control.close()

    _run(main())


def test_flusher_survives_backend_ingest_failure():
    async def main():
        metrics = MetricsRegistry()
        config = ServeConfig(
            port=0, backend="sequential", capacity=32,
            batch_events=4, batch_interval=0.01, snapshot_interval=0.02,
        )
        async with StreamServer(config, metrics=metrics) as server:
            real_ingest = server._backend.ingest
            tripped = []

            def flaky_ingest(batch):
                if not tripped:
                    tripped.append(True)
                    raise RuntimeError("injected backend failure")
                real_ingest(batch)

            server._backend.ingest = flaky_ingest
            client = await _Client.connect(server.port)

            # the first full batch hits the injected failure and is lost
            reply = await client.request({"op": "ingest", "events": ["a"] * 4})
            assert reply["ok"]
            # flush must still return: task_done fires even on failure,
            # so queue.join() cannot hang on the dead batch
            flushed = await client.request({"op": "flush"})
            assert flushed["ok"] and flushed["processed"] == 0

            # the flusher survived: later batches land and are queryable
            reply = await client.request({"op": "ingest", "events": ["b"] * 4})
            assert reply["ok"]
            flushed = await client.request({"op": "flush"})
            assert flushed["ok"] and flushed["processed"] == 4

            counters = metrics.snapshot()["counters"]
            assert counters["serve.batch.flush_failures"] == 1
            stats = (await client.request({"op": "stats"}))["stats"]
            assert stats["accepted_events"] == 8   # acked, one batch lost
            assert stats["processed"] == 4
            await client.close()

    _run(main())


# ----------------------------------------------------------------------
# Framing: oversized lines report frame-too-large and drop the link
# ----------------------------------------------------------------------
def test_frame_too_large_closes_connection():
    async def main():
        config = ServeConfig(
            port=0, backend="sequential", capacity=32,
            max_frame_bytes=1024,
            batch_events=8, batch_interval=0.01, snapshot_interval=0.05,
        )
        async with StreamServer(config) as server:
            client = await _Client.connect(server.port)
            client.writer.write(b'{"op": "ingest", "events": ["' +
                                b"x" * 4096 + b'"]}\n')
            await client.writer.drain()
            payload = await client.read_frame()
            assert payload["ok"] is False
            assert payload["error"] == "frame-too-large"
            # framing is unrecoverable: the server hangs up
            tail = await asyncio.wait_for(client.reader.read(), TIMEOUT)
            assert tail == b""
            await client.close()

            # the server itself is fine: new connections still work
            fresh = await _Client.connect(server.port)
            assert (await fresh.request({"op": "ping"}))["pong"] is True
            await fresh.close()

    _run(main())
