"""``repro top``: the dashboard renderer and its live client loop.

Rendering is pinned on hand-built payloads (pure function, no server);
the client loop runs against a real server exactly like the other serve
tests — including the ``--once --json`` form the CI smoke job scripts
against.
"""

import asyncio
import io
import json

from repro.obs.registry import MetricsRegistry
from repro.serve import ServeConfig, StreamServer, render_dashboard, run_top
from repro.serve.top import worker_beacon_rows

TIMEOUT = 30.0


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def _payload(**overrides):
    base = {
        "backend": "sequential",
        "processed": 1200,
        "accepted": 1250,
        "staleness": 0.004,
        "summary": {
            "window_seconds": 10.0,
            "samples": 20,
            "rates": {"serve.ingest.events": 125.0},
            "increases": {"serve.ingest.events": 1250.0},
            "gauges": {
                "serve.queue.depth": {
                    "last": 2.0, "min": 0.0, "max": 4.0, "delta": 2.0,
                },
            },
            "quantiles": {
                "serve.query.seconds": {
                    "count": 40.0, "rate": 4.0,
                    "p50": 0.002, "p90": 0.004, "p99": 0.009,
                },
            },
        },
        "alerts": [
            {"alert": "serve-flush-failures", "metric": "x",
             "kind": "increase", "severity": "critical",
             "threshold": 0.0, "firing": False, "since": None,
             "value": 0.0},
        ],
        "firing": [],
        "beacons": {},
    }
    base.update(overrides)
    return base


def test_render_dashboard_panes():
    text = render_dashboard(_payload())
    assert "backend=sequential" in text
    assert "all quiet" in text
    assert "ingest events/s" in text and "125.0" in text
    # latency pane renders in milliseconds
    assert "2.00" in text and "9.00" in text
    assert "queue depth" in text
    assert "serve-flush-failures" in text and "FIRING" not in text


def test_render_dashboard_firing_and_events():
    payload = _payload(firing=["serve-flush-failures"])
    payload["alerts"][0]["firing"] = True
    payload["alerts"][0]["value"] = 3.0
    events = [{"event": "alert", "state": "firing",
               "alert": "serve-flush-failures", "value": 3.0}]
    text = render_dashboard(payload, events)
    assert "FIRING: serve-flush-failures" in text
    assert "recent alert events" in text
    assert "[  firing] serve-flush-failures" in text


def test_render_dashboard_empty_payload_does_not_crash():
    text = render_dashboard({})
    assert "repro top" in text


def test_render_dashboard_worker_pane():
    beacons = {
        "counters": {
            "mp.beacon.0.processed": 500, "mp.beacon.0.batches": 10,
            "mp.beacon.1.processed": 700, "mp.beacon.1.batches": 14,
        },
        "gauges": {
            "mp.beacon.0.ring_busy": 1.0, "mp.beacon.1.ring_busy": 0.0,
        },
    }
    rows = worker_beacon_rows(beacons)
    assert [row["worker"] for row in rows] == [0, 1]
    assert rows[1] == {"worker": 1, "processed": 700, "batches": 14,
                       "ring_busy": 0.0}
    text = render_dashboard(_payload(beacons=beacons))
    assert "workers (beacons)" in text
    assert "worker 0" in text and "worker 1" in text


def test_run_top_once_json_against_live_server():
    async def main():
        config = ServeConfig(
            port=0, backend="sequential", capacity=32,
            batch_events=8, batch_interval=0.01, snapshot_interval=0.02,
            watchdog_interval=0.05,
        )
        async with StreamServer(config, metrics=MetricsRegistry()) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                json.dumps({"op": "ingest", "events": ["a", "b"]}).encode()
                + b"\n"
            )
            await writer.drain()
            assert json.loads(await reader.readline())["ok"]

            out = io.StringIO()
            code = await run_top(
                "127.0.0.1", server.port, once=True, as_json=True, out=out
            )
            assert code == 0
            payload = json.loads(out.getvalue())
            assert payload["ok"] and payload["backend"] == "sequential"
            assert payload["firing"] == []
            assert "summary" in payload

            # rendered --once form: one full dashboard frame
            out = io.StringIO()
            assert await run_top(
                "127.0.0.1", server.port, once=True, out=out
            ) == 0
            assert "repro top" in out.getvalue()

            # --frames: stream a couple of pushes then detach cleanly
            out = io.StringIO()
            assert await run_top(
                "127.0.0.1", server.port, period=0.03, frames=2, out=out
            ) == 0
            assert out.getvalue().count("repro top") == 2

            writer.close()
            await writer.wait_closed()

    _run(main())


def test_run_top_cannot_connect_exits_two():
    async def main():
        # bind-then-close gives a port with nothing listening
        server = await asyncio.start_server(
            lambda r, w: None, "127.0.0.1", 0
        )
        port = server.sockets[0].getsockname()[1]
        server.close()
        await server.wait_closed()
        assert await run_top("127.0.0.1", port, once=True) == 2

    _run(main())
