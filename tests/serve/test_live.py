"""End-to-end tests for the serve tier's live telemetry plane.

Same recipe as test_server.py: every test boots a real
:class:`StreamServer` on an ephemeral port and talks NDJSON over TCP.
The two acceptance-critical pins live here: the SLO watchdog *fires* on
an injected flush-failure fault and *stays silent* on an identical
clean run, and the instrumentation-off server (``metrics=None``)
answers queries bit-identically to an instrumented one.
"""

import asyncio
import json
import time

from repro.obs.registry import MetricsRegistry
from repro.serve import SERVE_FAULTS, ServeConfig, StreamServer, is_push

TIMEOUT = 30.0


class _Client:
    """A tiny NDJSON test client; pushes are collected, not returned."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.pushes = []

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def read_frame(self):
        line = await asyncio.wait_for(self.reader.readline(), TIMEOUT)
        assert line, "server closed the connection mid-read"
        return json.loads(line)

    async def request(self, obj):
        self.writer.write(json.dumps(obj).encode() + b"\n")
        await self.writer.drain()
        while True:
            payload = await self.read_frame()
            if is_push(payload):
                self.pushes.append(payload)
                continue
            return payload

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _run(coro):
    asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def _config(**overrides):
    base = dict(
        port=0, backend="sequential", capacity=64,
        batch_events=8, batch_interval=0.01, snapshot_interval=0.02,
        watchdog_interval=0.05,
    )
    base.update(overrides)
    return ServeConfig(**base)


# ----------------------------------------------------------------------
# The metrics op: one-shot, raw snapshots, periodic push subscription
# ----------------------------------------------------------------------
def test_metrics_op_one_shot_and_raw():
    async def main():
        async with StreamServer(
            _config(), metrics=MetricsRegistry()
        ) as server:
            client = await _Client.connect(server.port)
            await client.request({"op": "ingest", "events": ["a", "b", "a"]})
            await client.request({"op": "flush"})

            reply = await client.request({"op": "metrics", "id": "m1"})
            assert reply["ok"] and reply["id"] == "m1"
            assert reply["backend"] == "sequential"
            assert reply["accepted"] == 3 and reply["processed"] == 3
            assert reply["firing"] == []
            assert {a["alert"] for a in reply["alerts"]} >= {
                "serve-flush-failures", "serve-staleness",
            }
            summary = reply["summary"]
            assert set(summary) == {
                "window_seconds", "samples", "rates", "increases",
                "gauges", "quantiles",
            }
            assert "snapshot" not in reply

            # raw mode ships the merged cumulative snapshot alongside
            reply = await client.request({"op": "metrics", "raw": True})
            snap = reply["snapshot"]
            assert snap["counters"]["serve.ingest.events"] == 3
            assert "serve.batch.flush_seconds" in snap["histograms"]

            await client.close()

    _run(main())


def test_metrics_subscription_pushes_and_unsubscribe():
    async def main():
        async with StreamServer(
            _config(), metrics=MetricsRegistry()
        ) as server:
            client = await _Client.connect(server.port)
            reply = await client.request(
                {"op": "metrics", "period": 0.03}
            )
            # the first payload rides on the registration response
            assert reply["ok"] and "summary" in reply
            sub_id = reply["subscription"]
            assert reply["period"] == 0.03

            while len(client.pushes) < 2:
                payload = await client.read_frame()
                if is_push(payload):
                    client.pushes.append(payload)
            first, second = client.pushes[:2]
            assert first["push"] == sub_id and second["push"] == sub_id
            assert second["seq"] > first["seq"]
            assert "summary" in first and "firing" in first

            reply = await client.request(
                {"op": "unsubscribe", "subscription": sub_id}
            )
            assert reply["ok"] and reply["unsubscribed"] == sub_id
            await client.close()

    _run(main())


def test_metrics_op_works_without_instrumentation():
    async def main():
        # metrics=None: the NullRegistry serves empty-but-valid telemetry
        async with StreamServer(_config()) as server:
            client = await _Client.connect(server.port)
            await client.request({"op": "ingest", "events": ["x"]})
            reply = await client.request({"op": "metrics", "raw": True})
            assert reply["ok"]
            assert reply["snapshot"]["counters"] == {}
            assert reply["summary"]["rates"] == {}
            assert reply["firing"] == []
            await client.close()

    _run(main())


# ----------------------------------------------------------------------
# Prometheus HTTP endpoint, live next to the NDJSON port
# ----------------------------------------------------------------------
async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), TIMEOUT)
    writer.close()
    head, _, body = raw.decode("utf-8").partition("\r\n\r\n")
    status = head.split("\r\n")[0].split(" ", 1)[1]
    return status, head, body


def test_prometheus_endpoint_serves_scrapes():
    async def main():
        async with StreamServer(
            _config(metrics_port=0), metrics=MetricsRegistry()
        ) as server:
            http_port = server.metrics_http_port
            assert http_port is not None and http_port > 0

            client = await _Client.connect(server.port)
            await client.request({"op": "ingest", "events": ["a"] * 5})
            await client.request({"op": "flush"})

            status, head, body = await _http_get(http_port, "/metrics")
            assert status == "200 OK"
            assert "text/plain; version=0.0.4" in head
            assert "repro_serve_ingest_events_total 5" in body
            assert "# TYPE repro_serve_batch_flush_seconds histogram" in body
            assert body.endswith("\n")

            status, _, body = await _http_get(http_port, "/healthz")
            assert status == "200 OK" and json.loads(body) == {"ok": True}

            status, _, _ = await _http_get(http_port, "/nope")
            assert status == "404 Not Found"

            await client.close()

    _run(main())


# ----------------------------------------------------------------------
# The watchdog: fires on the injected fault, silent on a clean run
# ----------------------------------------------------------------------
def test_watchdog_fires_on_injected_flush_failures():
    assert "flush-failure" in SERVE_FAULTS

    async def main():
        async with StreamServer(
            _config(batch_events=4, fault="flush-failure"),
            metrics=MetricsRegistry(),
        ) as server:
            client = await _Client.connect(server.port)
            # a metrics stream registered up front receives the alert
            # transition the moment the watchdog fires it
            reply = await client.request({"op": "metrics", "period": 0.5})
            assert reply["ok"]

            # 4 batches: the even-numbered flushes raise, the odd land
            await client.request({"op": "ingest", "events": ["k"] * 16})
            flushed = await client.request({"op": "flush"})
            assert flushed["ok"] and 0 < flushed["processed"] < 16

            deadline = time.monotonic() + 10.0
            firing = []
            while time.monotonic() < deadline:
                reply = await client.request({"op": "metrics"})
                firing = reply["firing"]
                if "serve-flush-failures" in firing:
                    break
                await asyncio.sleep(0.05)
            assert "serve-flush-failures" in firing

            # the windowed increase that fired is visible in the summary
            assert reply["summary"]["increases"][
                "serve.batch.flush_failures"] >= 2
            state = {a["alert"]: a for a in reply["alerts"]}
            assert state["serve-flush-failures"]["firing"] is True
            assert state["serve-flush-failures"]["severity"] == "critical"

            # stats carries the same alarm for plain-protocol clients
            stats = (await client.request({"op": "stats"}))["stats"]
            assert "serve-flush-failures" in stats["alerts_firing"]

            # the in-protocol transition event reached the subscriber
            alert_pushes = [
                p for p in client.pushes if p.get("event") == "alert"
            ]
            assert any(
                p["alert"] == "serve-flush-failures"
                and p["state"] == "firing"
                for p in alert_pushes
            )

            await client.close()

    _run(main())


def test_watchdog_silent_on_clean_run():
    async def main():
        async with StreamServer(
            _config(batch_events=4), metrics=MetricsRegistry()
        ) as server:
            client = await _Client.connect(server.port)
            await client.request({"op": "ingest", "events": ["k"] * 16})
            flushed = await client.request({"op": "flush"})
            assert flushed["ok"] and flushed["processed"] == 16

            # let several watchdog evaluations pass over the same load
            await asyncio.sleep(0.3)
            reply = await client.request({"op": "metrics"})
            assert reply["firing"] == []
            assert all(a["firing"] is False for a in reply["alerts"])
            stats = (await client.request({"op": "stats"}))["stats"]
            assert stats["alerts_firing"] == []
            await client.close()

    _run(main())


# ----------------------------------------------------------------------
# The shadow-truth accuracy probe
# ----------------------------------------------------------------------
def test_accuracy_probe_tracks_keys_within_bound():
    async def main():
        async with StreamServer(
            _config(probe_keys=16), metrics=MetricsRegistry()
        ) as server:
            client = await _Client.connect(server.port)
            events = ["a"] * 30 + ["b"] * 20 + ["c"] * 10
            await client.request({"op": "ingest", "events": events})
            await client.request({"op": "flush"})
            await asyncio.sleep(0.15)   # a few watchdog ticks

            reply = await client.request({"op": "metrics", "raw": True})
            gauges = reply["snapshot"]["gauges"]
            assert gauges["serve.accuracy.tracked_keys"] == 3
            # sequential backend with spare capacity: estimates exact,
            # so the measured excess over eps*N must be zero
            assert gauges["serve.accuracy.bound_excess"] == 0.0
            assert reply["firing"] == []
            await client.close()

    _run(main())


def test_probe_disabled_with_zero_keys():
    async def main():
        async with StreamServer(
            _config(probe_keys=0), metrics=MetricsRegistry()
        ) as server:
            client = await _Client.connect(server.port)
            await client.request({"op": "ingest", "events": ["a", "b"]})
            await client.request({"op": "flush"})
            await asyncio.sleep(0.12)
            reply = await client.request({"op": "metrics", "raw": True})
            # the gauge family exists (registered up front) but with the
            # probe off nothing is ever admitted into it
            assert reply["snapshot"]["gauges"][
                "serve.accuracy.tracked_keys"] == 0.0
            await client.close()

    _run(main())


# ----------------------------------------------------------------------
# NullRegistry parity: telemetry off changes nothing the client can see
# ----------------------------------------------------------------------
def test_instrumentation_off_answers_are_bit_identical():
    events = (["hot"] * 40 + ["warm"] * 12 + ["w%d" % i for i in range(30)])

    async def serve_answers(metrics):
        answers = []
        async with StreamServer(_config(), metrics=metrics) as server:
            client = await _Client.connect(server.port)
            for start in range(0, len(events), 16):
                reply = await client.request(
                    {"op": "ingest", "events": events[start:start + 16]}
                )
                assert reply["ok"]
            flushed = await client.request({"op": "flush", "id": "f"})
            answers.append(flushed)
            for op in (
                {"op": "query", "kind": "topk", "k": 5, "id": "q1"},
                {"op": "query", "kind": "point", "element": "hot",
                 "id": "q2"},
                {"op": "query", "kind": "point", "element": "absent",
                 "phi": 0.01, "k": 3, "id": "q3"},
            ):
                reply = await client.request(op)
                assert reply["ok"]
                # staleness is wall-clock, everything else is data
                reply.pop("staleness", None)
                answers.append(reply)
            await client.close()
        return answers

    async def main():
        instrumented = await serve_answers(MetricsRegistry())
        bare = await serve_answers(None)
        assert json.dumps(instrumented, sort_keys=True) == json.dumps(
            bare, sort_keys=True
        )

    _run(main())
