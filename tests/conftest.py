"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.counters import ExactCounter
from repro.workloads import zipf_stream


@pytest.fixture(scope="session")
def skewed_stream():
    """A modest zipfian stream (alpha=2.0) shared across tests."""
    return zipf_stream(4000, 4000, 2.0, seed=11)


@pytest.fixture(scope="session")
def mild_stream():
    """A lightly skewed stream (alpha=1.2) with real counter churn."""
    return zipf_stream(4000, 4000, 1.2, seed=11)


@pytest.fixture(scope="session")
def exact_skewed(skewed_stream):
    """Ground-truth counts for the skewed stream."""
    counter = ExactCounter()
    counter.process_many(skewed_stream)
    return counter


@pytest.fixture(scope="session")
def exact_mild(mild_stream):
    """Ground-truth counts for the mild stream."""
    counter = ExactCounter()
    counter.process_many(mild_stream)
    return counter
