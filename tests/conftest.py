"""Shared fixtures for the test-suite.

The stream fixtures are parametrized over :func:`repro.testing.
seed_matrix`: by default each builds one stream (seed 11, the historical
fast path), while ``REPRO_TEST_SEEDS=11,12,13`` re-runs every dependent
test once per listed seed.
"""

from __future__ import annotations

import pytest

from repro.core.counters import ExactCounter
from repro.testing import seed_matrix
from repro.workloads import zipf_stream


@pytest.fixture(scope="session", params=seed_matrix(11))
def skewed_stream(request):
    """A modest zipfian stream (alpha=2.0) shared across tests."""
    return zipf_stream(4000, 4000, 2.0, seed=request.param)


@pytest.fixture(scope="session", params=seed_matrix(11))
def mild_stream(request):
    """A lightly skewed stream (alpha=1.2) with real counter churn."""
    return zipf_stream(4000, 4000, 1.2, seed=request.param)


@pytest.fixture(scope="session")
def exact_skewed(skewed_stream):
    """Ground-truth counts for the skewed stream."""
    counter = ExactCounter()
    counter.process_many(skewed_stream)
    return counter


@pytest.fixture(scope="session")
def exact_mild(mild_stream):
    """Ground-truth counts for the mild stream."""
    counter = ExactCounter()
    counter.process_many(mild_stream)
    return counter
