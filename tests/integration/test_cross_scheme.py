"""Cross-scheme integration tests: every design, one stream, one truth.

The deepest consistency check in the repository: the sequential
baseline, both naive parallel schemes, the hybrid, the CoTS framework
and the native real-thread implementations all process the *same*
stream, and all of their answers must agree with the exact ground truth
on the questions Space Saving guarantees (heavy hitters, upper bounds,
count conservation).
"""

import pytest

from repro.core.counters import ExactCounter
from repro.cots.framework import CoTSRunConfig, run_cots
from repro.native.delegation import count_with_threads
from repro.native.sharded import ShardedSpaceSaving
from repro.parallel import (
    SchemeConfig,
    run_hybrid,
    run_independent,
    run_sequential,
    run_shared,
)
from repro.workloads import zipf_stream

CAPACITY = 64


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(3000, 3000, 2.2, seed=77)


@pytest.fixture(scope="module")
def exact(stream):
    counter = ExactCounter()
    counter.process_many(stream)
    return counter


@pytest.fixture(scope="module")
def all_results(stream):
    config = lambda threads: SchemeConfig(threads=threads, capacity=CAPACITY)
    return {
        "sequential": run_sequential(stream, config(1)),
        "independent": run_independent(stream, config(4), merge_every=300),
        "shared": run_shared(stream, config(4)),
        "hybrid": run_hybrid(stream, config(4)),
        "cots": run_cots(
            stream, CoTSRunConfig(threads=16, capacity=CAPACITY)
        ),
    }


def test_every_scheme_identifies_the_same_top3(all_results, exact):
    expected = [element for element, _ in exact.top_k(3)]
    for name, result in all_results.items():
        got = [entry.element for entry in result.counter.top_k(3)]
        assert got == expected, f"{name} disagreed on the top-3"


def test_every_scheme_upper_bounds_heavy_hitters(all_results, exact):
    for name, result in all_results.items():
        for element, truth in exact.top_k(10):
            assert result.counter.estimate(element) >= truth, (
                f"{name} underestimated {element}"
            )


def test_single_structure_schemes_conserve_counts(all_results, stream):
    for name in ("sequential", "shared", "hybrid", "cots"):
        result = all_results[name]
        assert result.counter.summary.total_count == len(stream), name


def test_every_scheme_respects_capacity(all_results):
    for name, result in all_results.items():
        assert len(result.counter) <= CAPACITY, name


def test_native_threads_agree_with_simulated(stream, exact):
    native = count_with_threads(stream, threads=4)
    assert native.total() == len(stream)
    sharded = ShardedSpaceSaving(threads=4, capacity=CAPACITY * 4)
    sharded.count(stream)
    merged = sharded.merged()
    expected = [element for element, _ in exact.top_k(3)]
    assert [entry.element for entry in merged.top_k(3)] == expected
    for element, _ in exact.top_k(3):
        assert native.estimate(element) == exact.estimate(element)


def test_performance_ordering_matches_the_paper(all_results):
    """At 4 threads on skewed data: shared is the slowest design."""
    shared = all_results["shared"].seconds
    sequential = all_results["sequential"].seconds
    assert shared > sequential
    assert all_results["hybrid"].seconds < shared
