"""End-to-end query pipeline: streams -> counters -> §3.2 queries."""

import pytest

from repro.analysis.accuracy import frequent_accuracy, top_k_accuracy
from repro.core import (
    ExactCounter,
    FrequentSetQuery,
    IntervalSchedule,
    PointFrequentQuery,
    SpaceSaving,
    TopKSetQuery,
    answer,
    answer_all,
)
from repro.cots.framework import CoTSRunConfig, run_cots
from repro.workloads import bursty_stream, zipf_stream


def test_interval_queries_over_a_live_stream():
    stream = zipf_stream(2000, 2000, 2.0, seed=41)
    counter = SpaceSaving(capacity=64)
    schedule = IntervalSchedule(
        (TopKSetQuery(k=3), FrequentSetQuery(phi=0.1)),
        every_updates=200,
    )
    answers = answer_all(stream, counter, schedule)
    assert len(answers) == 2 * (len(stream) // 200)
    # the final top-k answer matches the exact one
    exact = ExactCounter()
    exact.process_many(stream)
    final_topk = [a for a in answers if isinstance(a.query, TopKSetQuery)][-1]
    assert [e.element for e in final_topk.result] == [
        e for e, _ in exact.top_k(3)
    ]


def test_accuracy_metrics_on_cots_output():
    stream = zipf_stream(3000, 3000, 2.0, seed=42)
    exact = ExactCounter()
    exact.process_many(stream)
    result = run_cots(stream, CoTSRunConfig(threads=8, capacity=64))
    top = top_k_accuracy(result.counter.top_k(5), exact, k=5)
    assert top.recall == 1.0
    frequent = frequent_accuracy(
        result.counter.frequent(0.05), exact, phi=0.05
    )
    assert frequent.recall == 1.0  # Space Saving never misses frequent items


def test_queries_track_a_drifting_hot_set():
    """Bursty streams: the top-1 answer follows the current burst."""
    stream = bursty_stream(
        3000, alphabet=1000, burst_length=1000, hot_fraction=0.9, seed=43
    )
    counter = SpaceSaving(capacity=128)
    schedule = IntervalSchedule((TopKSetQuery(k=1),), every_updates=1000)
    answers = answer_all(stream, counter, schedule)
    exact = ExactCounter()
    exact.process_many(stream)
    # the all-time top element is reported by the last query
    assert answers[-1].result[0].element == exact.top_k(1)[0][0]


def test_point_queries_consistent_with_set_queries():
    stream = zipf_stream(1500, 1500, 2.5, seed=44)
    counter = SpaceSaving(capacity=64)
    counter.process_many(stream)
    frequent_set = {
        entry.element for entry in answer(FrequentSetQuery(0.05), counter)
    }
    for element in list(frequent_set)[:10]:
        assert answer(PointFrequentQuery(element, 0.05), counter) is True
