"""The docs-example checker: real docs stay green, rot is caught."""

import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_docs  # noqa: E402


def test_repo_docs_examples_all_parse(capsys):
    # the actual CI gate: every example in README.md + docs/*.md parses
    assert check_docs.main([]) == 0
    assert "all parse" in capsys.readouterr().out


def test_extracts_only_repro_invocations(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "```bash\n"
        "PYTHONPATH=src python -m repro bench --scale tiny > out.json\n"
        "pytest tests/                 # not a repro command\n"
        "python -m repro generate --length 10 | head\n"
        "```\n"
        "```python\n"
        "print('python fences are ignored')\n"
        "```\n"
    )
    examples = check_docs.extract_examples(page)
    assert [e.argv for e in examples] == [
        ["bench", "--scale", "tiny"],
        ["generate", "--length", "10"],
    ]


def test_joins_backslash_continuations(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "```bash\n"
        "python -m repro schedcheck --schemes cots \\\n"
        "    --schedules 5 --seed 1\n"
        "```\n"
    )
    (example,) = check_docs.extract_examples(page)
    assert example.argv == [
        "schedcheck", "--schemes", "cots", "--schedules", "5", "--seed", "1",
    ]


@pytest.mark.parametrize(
    "command",
    [
        "python -m repro bench --suite gpu",        # bad choice value
        "python -m repro frobnicate",               # unknown subcommand
        "python -m repro report --entries x",       # misspelled flag
    ],
)
def test_flags_stale_examples(tmp_path, capsys, command):
    page = tmp_path / "page.md"
    page.write_text(f"```bash\n{command}\n```\n")
    assert check_docs.main([str(page)]) == 1
    assert "stale example" in capsys.readouterr().out


def test_help_examples_count_as_valid(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("```bash\npython -m repro --help\n```\n")
    assert check_docs.main([str(page)]) == 0
