"""Unit tests for Sticky Sampling (randomized; fixed seeds)."""

import pytest

from repro.core.sticky_sampling import StickySampling
from repro.errors import ConfigurationError


@pytest.mark.parametrize(
    "kwargs",
    [
        {"support": 0.5, "epsilon": 0.5},   # epsilon not < support
        {"support": 0.1, "epsilon": 0.2},
        {"support": 1.5, "epsilon": 0.01},
        {"support": 0.1, "epsilon": 0.01, "delta": 0.0},
    ],
)
def test_invalid_parameters(kwargs):
    with pytest.raises(ConfigurationError):
        StickySampling(**kwargs)


def test_initial_window_counts_exactly():
    counter = StickySampling(0.1, 0.01, seed=1)
    # within the first window every element is sampled at rate 1
    counter.process_many(["a"] * 10 + ["b"] * 5)
    assert counter.estimate("a") == 10
    assert counter.estimate("b") == 5


def test_never_overestimates(mild_stream, exact_mild):
    counter = StickySampling(0.05, 0.01, seed=3)
    counter.process_many(mild_stream)
    for entry in counter.entries():
        assert entry.count <= exact_mild.estimate(entry.element)


def test_sampling_rate_decays():
    counter = StickySampling(0.1, 0.05, seed=2)
    counter.process_many(range(5000))
    assert counter.sampling_rate > 1


def test_memory_stays_bounded_under_churn():
    counter = StickySampling(0.05, 0.02, delta=0.1, seed=4)
    counter.process_many(range(30_000))
    # expected (2/eps) log(1/(s*delta)) = 100 * log(200) ~ 530
    assert len(counter) <= 1500


def test_frequent_elements_reported(skewed_stream, exact_skewed):
    counter = StickySampling(0.05, 0.01, seed=5)
    counter.process_many(skewed_stream)
    answered = {entry.element for entry in counter.frequent()}
    for element, truth in exact_skewed.top_k(3):
        if truth >= 0.05 * len(skewed_stream):
            assert element in answered


def test_deterministic_given_seed(skewed_stream):
    def run():
        counter = StickySampling(0.05, 0.01, seed=42)
        counter.process_many(skewed_stream)
        return [(e.element, e.count) for e in counter.entries()]

    assert run() == run()


def test_top_k_validates():
    with pytest.raises(ConfigurationError):
        StickySampling(0.1, 0.01, seed=0).top_k(0)
