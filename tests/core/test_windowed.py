"""Unit tests for sliding-window Space Saving."""

import pytest

from repro.core.windowed import WindowedSpaceSaving
from repro.errors import ConfigurationError


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window_size": 0, "capacity": 4},
        {"window_size": 10, "capacity": 0},
        {"window_size": 10, "capacity": 4, "panes": 0},
        {"window_size": 10, "capacity": 4, "panes": 20},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ConfigurationError):
        WindowedSpaceSaving(**kwargs)


def test_counts_within_one_window():
    window = WindowedSpaceSaving(window_size=100, capacity=20, panes=4)
    window.process_many(["a"] * 10 + ["b"] * 5)
    assert window.estimate("a") == 10
    assert window.estimate("b") == 5
    assert window.window_count == 15


def test_old_elements_expire():
    window = WindowedSpaceSaving(window_size=40, capacity=20, panes=4)
    window.process_many(["old"] * 20)
    window.process_many(["new"] * 60)  # pushes every 'old' pane out
    assert window.estimate("old") == 0
    assert window.estimate("new") > 0


def test_window_tracks_a_drifting_hot_element():
    window = WindowedSpaceSaving(window_size=60, capacity=30, panes=6)
    window.process_many(["first"] * 60)
    assert window.top_k(1)[0].element == "first"
    window.process_many(["second"] * 70)
    assert window.top_k(1)[0].element == "second"
    assert window.estimate("first") == 0


def test_window_count_bounded_by_window_size():
    window = WindowedSpaceSaving(window_size=50, capacity=20, panes=5)
    window.process_many(range(500))
    # panes cover at most window_size elements (+ the filling pane)
    assert window.window_count <= 50 + window.pane_size


def test_frequent_over_the_window():
    window = WindowedSpaceSaving(window_size=100, capacity=30, panes=4)
    window.process_many(["hot"] * 30 + list(range(20)))
    frequent = window.frequent(0.2)
    assert [entry.element for entry in frequent] == ["hot"]
    with pytest.raises(ConfigurationError):
        window.frequent(0.0)


def test_processed_counts_everything_ever_seen():
    window = WindowedSpaceSaving(window_size=10, capacity=5, panes=2)
    window.process_many(range(37))
    assert window.processed == 37


def test_merged_cache_invalidated_on_update():
    window = WindowedSpaceSaving(window_size=20, capacity=10, panes=2)
    window.process("x")
    assert window.estimate("x") == 1
    window.process("x")
    assert window.estimate("x") == 2


def test_len_reports_monitored_window_elements():
    window = WindowedSpaceSaving(window_size=100, capacity=8, panes=2)
    window.process_many(["a", "b", "c"])
    assert len(window) == 3


def test_coverage_never_below_window_size():
    """Regression: pane_size flooring + eager retention used to leave the
    queryable window short of ``window_size`` (e.g. 10/8 covered 8)."""
    for window_size, panes in [(10, 8), (10, 3), (100, 7), (50, 50), (9, 4)]:
        window = WindowedSpaceSaving(
            window_size=window_size, capacity=window_size, panes=panes
        )
        for step in range(1, 5 * window_size + 1):
            window.process(step)
            assert window.window_count >= min(step, window_size), (
                f"window {window_size}/{panes} panes covered only "
                f"{window.window_count} after {step} elements"
            )


def test_coverage_bounded_above():
    """Retention keeps at most ~one extra pane beyond the window."""
    window = WindowedSpaceSaving(window_size=30, capacity=30, panes=6)
    for step in range(500):
        window.process(step)
        assert window.window_count <= 30 + 2 * window.pane_size


def test_full_window_estimates_are_exact_when_capacity_fits():
    """With per-pane capacity >= distinct elements, the last
    ``window_size`` elements must all be counted."""
    window = WindowedSpaceSaving(window_size=10, capacity=32, panes=8)
    stream = [i % 4 for i in range(40)]
    window.process_many(stream)
    recent = stream[-window.window_count:]
    for element in set(recent):
        assert window.estimate(element) >= recent.count(element)
