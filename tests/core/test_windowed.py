"""Unit tests for sliding-window Space Saving."""

import pytest

from repro.core.windowed import WindowedSpaceSaving
from repro.errors import ConfigurationError


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window_size": 0, "capacity": 4},
        {"window_size": 10, "capacity": 0},
        {"window_size": 10, "capacity": 4, "panes": 0},
        {"window_size": 10, "capacity": 4, "panes": 20},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ConfigurationError):
        WindowedSpaceSaving(**kwargs)


def test_counts_within_one_window():
    window = WindowedSpaceSaving(window_size=100, capacity=20, panes=4)
    window.process_many(["a"] * 10 + ["b"] * 5)
    assert window.estimate("a") == 10
    assert window.estimate("b") == 5
    assert window.window_count == 15


def test_old_elements_expire():
    window = WindowedSpaceSaving(window_size=40, capacity=20, panes=4)
    window.process_many(["old"] * 20)
    window.process_many(["new"] * 60)  # pushes every 'old' pane out
    assert window.estimate("old") == 0
    assert window.estimate("new") > 0


def test_window_tracks_a_drifting_hot_element():
    window = WindowedSpaceSaving(window_size=60, capacity=30, panes=6)
    window.process_many(["first"] * 60)
    assert window.top_k(1)[0].element == "first"
    window.process_many(["second"] * 70)
    assert window.top_k(1)[0].element == "second"
    assert window.estimate("first") == 0


def test_window_count_bounded_by_window_size():
    window = WindowedSpaceSaving(window_size=50, capacity=20, panes=5)
    window.process_many(range(500))
    # panes cover at most window_size elements (+ the filling pane)
    assert window.window_count <= 50 + window.pane_size


def test_frequent_over_the_window():
    window = WindowedSpaceSaving(window_size=100, capacity=30, panes=4)
    window.process_many(["hot"] * 30 + list(range(20)))
    frequent = window.frequent(0.2)
    assert [entry.element for entry in frequent] == ["hot"]
    with pytest.raises(ConfigurationError):
        window.frequent(0.0)


def test_processed_counts_everything_ever_seen():
    window = WindowedSpaceSaving(window_size=10, capacity=5, panes=2)
    window.process_many(range(37))
    assert window.processed == 37


def test_merged_cache_invalidated_on_update():
    window = WindowedSpaceSaving(window_size=20, capacity=10, panes=2)
    window.process("x")
    assert window.estimate("x") == 1
    window.process("x")
    assert window.estimate("x") == 2


def test_len_reports_monitored_window_elements():
    window = WindowedSpaceSaving(window_size=100, capacity=8, panes=2)
    window.process_many(["a", "b", "c"])
    assert len(window) == 3
