"""Differential tests: the batched fast lanes must be observationally
identical to per-element processing, across every workload shape."""

import random

import pytest

from repro.core.space_saving import SpaceSaving
from repro.core.windowed import WindowedSpaceSaving
from repro.errors import ConfigurationError
from repro.workloads.generators import (
    bursty_stream,
    churn_stream,
    interleave,
    uniform_stream,
)
from repro.workloads.zipf import zipf_stream


def _state(counter):
    """Canonical queryable state: sorted (element, count, error)."""
    return sorted((e.element, e.count, e.error) for e in counter.entries())


def _streams():
    return {
        "zipf": zipf_stream(4000, 500, 2.0, seed=3),
        "uniform": uniform_stream(4000, 300, seed=4),
        "churn": churn_stream(3000),
        "bursty": bursty_stream(4000, 200, burst_length=250, seed=5),
        # adversarial: skew interleaved with all-distinct churn, so hot
        # increments and forced evictions alternate element by element
        "adversarial": interleave(
            [zipf_stream(2000, 50, 2.5, seed=6), churn_stream(2000)]
        ),
    }


@pytest.mark.parametrize("name", sorted(_streams()))
@pytest.mark.parametrize("capacity", [1, 7, 64, 500])
def test_process_many_matches_per_element(name, capacity):
    stream = _streams()[name]
    base = SpaceSaving(capacity=capacity)
    for element in stream:
        base.process(element)
    fast = SpaceSaving(capacity=capacity)
    fast.process_many(stream)
    fast.summary.check_invariants()
    assert fast.processed == base.processed
    assert _state(fast) == _state(base)


def test_process_many_small_chunks_cross_boundaries():
    """Chunk boundaries must not change results (forced tiny chunks)."""
    stream = zipf_stream(2000, 300, 1.5, seed=9)
    base = SpaceSaving(capacity=16)
    for element in stream:
        base.process(element)
    fast = SpaceSaving(capacity=16)
    fast.BATCH_CHUNK = 17  # instance override: exercise many boundaries
    fast.process_many(stream)
    fast.summary.check_invariants()
    assert _state(fast) == _state(base)


def test_process_many_accepts_generators():
    fast = SpaceSaving(capacity=8)
    fast.process_many(x % 5 for x in range(100))
    assert fast.processed == 100
    assert fast.estimate(0) == 20


@pytest.mark.parametrize("name", sorted(_streams()))
def test_windowed_process_many_matches_per_element(name):
    stream = _streams()[name]
    base = WindowedSpaceSaving(window_size=600, capacity=40, panes=7)
    for element in stream:
        base.process(element)
    fast = WindowedSpaceSaving(window_size=600, capacity=40, panes=7)
    fast.process_many(stream)
    assert fast.processed == base.processed
    assert fast.window_count == base.window_count
    assert _state(fast._merged()) == _state(base._merged())


def test_from_entries_truncation_is_order_independent():
    """Tie truncation must not depend on the input permutation."""
    entries = SpaceSaving(capacity=50)
    stream = zipf_stream(1000, 60, 1.2, seed=11)
    entries.process_many(stream)
    pool = entries.entries()
    rng = random.Random(13)
    baseline = None
    for _ in range(10):
        shuffled = list(pool)
        rng.shuffle(shuffled)
        truncated = SpaceSaving.from_entries(10, shuffled, entries.processed)
        state = _state(truncated)
        if baseline is None:
            baseline = state
        assert state == baseline


def test_from_entries_without_truncation_preserves_caller_order():
    counter = SpaceSaving(capacity=8)
    counter.process_many(["a", "a", "b", "c", "c", "c"])
    rebuilt = SpaceSaving.from_entries(8, counter.entries(), counter.processed)
    assert [e.element for e in rebuilt.entries()] == [
        e.element for e in counter.entries()
    ]


def test_is_frequent_uses_phi_fraction():
    counter = SpaceSaving(capacity=10)
    counter.process_many(["hot"] * 60 + ["cold"] * 10 + ["warm"] * 30)
    # hot holds 60% of 100 elements
    assert counter.is_frequent("hot", 0.5)
    assert not counter.is_frequent("cold", 0.5)
    assert not counter.is_frequent("warm", 0.5)
    assert counter.is_frequent("warm", 0.2)
    # matches the query-layer definition: estimate > phi * processed
    from repro.core.queries import PointFrequentQuery, answer

    for element in ("hot", "cold", "warm"):
        for phi in (0.05, 0.25, 0.5):
            assert counter.is_frequent(element, phi) == answer(
                PointFrequentQuery(element=element, phi=phi), counter
            )


def test_is_frequent_validates_phi():
    counter = SpaceSaving(capacity=4)
    counter.process("x")
    for phi in (0.0, 1.0, -0.5, 2.0):
        with pytest.raises(ConfigurationError):
            counter.is_frequent("x", phi)


def test_exceeds_count_keeps_absolute_semantics():
    counter = SpaceSaving(capacity=10)
    counter.process_many(["hot"] * 60 + ["cold"] * 10)
    assert counter.exceeds_count("hot", 59)
    assert not counter.exceeds_count("hot", 60)
    assert not counter.exceeds_count("missing", 0)
