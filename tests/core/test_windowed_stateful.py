"""Model-based stateful testing of WindowedSpaceSaving (hypothesis).

A RuleBasedStateMachine feeds the windowed counter single elements and
bulk slices while mirroring the pane arithmetic (rotation + retention)
in a plain list-of-lists model.  The alphabet is kept smaller than the
per-pane capacity so every pane is exact, which makes the merged
in-window estimates exactly comparable to the model's counts.
"""

import collections

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.windowed import WindowedSpaceSaving

# alphabet strictly smaller than _CAPACITY so estimates stay exact
_elements = st.integers(min_value=0, max_value=7)
_CAPACITY = 16


class WindowedMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.windowed = None
        self.model_panes = []

    @initialize(
        window=st.integers(min_value=4, max_value=20),
        panes=st.integers(min_value=1, max_value=4),
    )
    def setup(self, window, panes):
        self.windowed = WindowedSpaceSaving(
            window_size=window, capacity=_CAPACITY, panes=panes
        )
        self.pane_size = self.windowed.pane_size
        self.window_size = window
        self.processed = 0

    # -- model mirror of _rotate / process ----------------------------
    def _model_rotate(self):
        self.model_panes.append([])
        while (
            len(self.model_panes) - 2
        ) * self.pane_size >= self.window_size:
            self.model_panes.pop(0)

    def _model_process(self, element):
        if not self.model_panes or (
            len(self.model_panes[-1]) >= self.pane_size
        ):
            self._model_rotate()
        self.model_panes[-1].append(element)
        self.processed += 1

    # -- rules ---------------------------------------------------------
    @rule(element=_elements)
    def process_one(self, element):
        self.windowed.process(element)
        self._model_process(element)

    @rule(chunk=st.lists(_elements, min_size=0, max_size=25))
    def process_bulk(self, chunk):
        self.windowed.process_many(chunk)
        for element in chunk:
            self._model_process(element)

    @precondition(lambda self: self.windowed is not None)
    @rule(k=st.integers(min_value=1, max_value=10))
    def top_k_is_sorted_and_consistent(self, k):
        top = self.windowed.top_k(k)
        counts = [entry.count for entry in top]
        assert counts == sorted(counts, reverse=True)
        for entry in top:
            assert self.windowed.estimate(entry.element) == entry.count

    # -- invariants ----------------------------------------------------
    @invariant()
    def matches_model(self):
        if self.windowed is None:
            return
        in_window = collections.Counter(
            element for pane in self.model_panes for element in pane
        )
        assert self.windowed.processed == self.processed
        assert self.windowed.window_count == sum(in_window.values())
        assert len(self.windowed) == len(in_window)
        for element, truth in in_window.items():
            assert self.windowed.estimate(element) == truth

    @invariant()
    def window_coverage_is_bounded(self):
        """Sealed panes + filler cover >= window and <~ window + 2 panes."""
        if self.windowed is None or not self.model_panes:
            return
        sealed = len(self.model_panes) - 1
        if sealed * self.pane_size < self.window_size:
            return  # still warming up: nothing has been dropped yet
        assert sealed * self.pane_size < self.window_size + 2 * self.pane_size


TestWindowedStateful = WindowedMachine.TestCase
TestWindowedStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
