"""Unit tests for Sample-and-Hold."""

import pytest

from repro.core.sample_and_hold import SampleAndHold
from repro.errors import ConfigurationError


@pytest.mark.parametrize(
    "kwargs",
    [{"sample_rate": 0.0}, {"sample_rate": 1.5},
     {"sample_rate": 0.5, "max_entries": -1}],
)
def test_validation(kwargs):
    with pytest.raises(ConfigurationError):
        SampleAndHold(**kwargs)


def test_rate_one_counts_exactly():
    counter = SampleAndHold(sample_rate=1.0, seed=0)
    counter.process_many(["a", "b", "a"])
    assert counter.estimate("a") == 2
    assert counter.estimate("b") == 1
    assert counter.admissions == 2


def test_never_overestimates(mild_stream, exact_mild):
    counter = SampleAndHold(sample_rate=0.1, seed=3)
    counter.process_many(mild_stream)
    for entry in counter.entries():
        assert entry.count <= exact_mild.estimate(entry.element)


def test_heavy_elements_get_admitted(skewed_stream, exact_skewed):
    counter = SampleAndHold(sample_rate=0.02, seed=5)
    counter.process_many(skewed_stream)
    for element, truth in exact_skewed.top_k(3):
        if truth > 200:
            assert element in counter
            # admitted early: undercount far below the full count
            assert counter.estimate(element) > truth / 2


def test_undercount_is_bounded_in_expectation(skewed_stream, exact_skewed):
    rate = 0.05
    counter = SampleAndHold(sample_rate=rate, seed=7)
    counter.process_many(skewed_stream)
    hot, truth = exact_skewed.top_k(1)[0]
    # expected miss is (1/rate - 1) = 19; allow generous slack
    assert truth - counter.estimate(hot) < 20 / rate


def test_max_entries_rejects_when_full():
    counter = SampleAndHold(sample_rate=1.0, max_entries=2, seed=0)
    counter.process_many(["a", "b", "c", "c"])
    assert len(counter) == 2
    assert counter.rejected_full >= 1


def test_for_threshold_sizing():
    counter = SampleAndHold.for_threshold(0.01, oversampling=20, seed=0)
    assert counter.sample_rate == pytest.approx(0.2)
    with pytest.raises(ConfigurationError):
        SampleAndHold.for_threshold(0.0)


def test_deterministic_per_seed(skewed_stream):
    def run():
        counter = SampleAndHold(sample_rate=0.1, seed=9)
        counter.process_many(skewed_stream)
        return [(e.element, e.count) for e in counter.entries()]

    assert run() == run()


def test_frequent_uses_corrected_estimates():
    counter = SampleAndHold(sample_rate=0.5, seed=1)
    counter.process_many(["x"] * 100 + list(range(50)))
    frequent = counter.frequent(0.3)
    assert [entry.element for entry in frequent] == ["x"]
    with pytest.raises(ConfigurationError):
        counter.frequent(0.0)
    with pytest.raises(ConfigurationError):
        counter.top_k(0)
