"""Unit tests for sequential Space Saving."""

import pytest

from repro.core.counters import CounterEntry, ExactCounter
from repro.core.space_saving import SpaceSaving
from repro.errors import ConfigurationError


def test_construct_with_capacity_or_epsilon():
    assert SpaceSaving(capacity=10).capacity == 10
    assert SpaceSaving(epsilon=0.1).capacity == 10
    assert SpaceSaving(epsilon=0.3).capacity == 4  # ceil(1/0.3)


@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"capacity": 10, "epsilon": 0.1},
        {"capacity": 0},
        {"epsilon": 0.0},
        {"epsilon": 1.0},
    ],
)
def test_invalid_construction(kwargs):
    with pytest.raises(ConfigurationError):
        SpaceSaving(**kwargs)


def test_exact_when_alphabet_fits():
    counter = SpaceSaving(capacity=10)
    stream = ["a", "b", "a", "c", "a", "b"]
    counter.process_many(stream)
    assert counter.estimate("a") == 3
    assert counter.estimate("b") == 2
    assert counter.estimate("c") == 1
    assert counter.error("a") == 0
    assert counter.processed == 6


def test_overwrite_takes_min_plus_one():
    counter = SpaceSaving(capacity=2)
    counter.process_many(["a", "a", "b"])
    counter.process("c")  # evicts b (count 1): c gets count 2, error 1
    assert "b" not in counter
    assert counter.estimate("c") == 2
    assert counter.error("c") == 1
    assert len(counter) == 2


def test_monitored_never_exceeds_capacity(skewed_stream):
    counter = SpaceSaving(capacity=25)
    counter.process_many(skewed_stream)
    assert len(counter) <= 25
    counter.summary.check_invariants()


def test_total_count_equals_stream_length(skewed_stream):
    counter = SpaceSaving(capacity=25)
    counter.process_many(skewed_stream)
    assert counter.summary.total_count == len(skewed_stream)


def test_overestimation_bounds(mild_stream, exact_mild):
    counter = SpaceSaving(capacity=50)
    counter.process_many(mild_stream)
    for element, truth in exact_mild.counts().items():
        estimate = counter.estimate(element)
        if estimate:
            assert estimate >= truth
            assert estimate - counter.error(element) <= truth


def test_min_freq_bounded_by_n_over_m(mild_stream):
    counter = SpaceSaving(capacity=40)
    counter.process_many(mild_stream)
    assert counter.max_error() <= len(mild_stream) / 40


def test_no_false_negatives_for_frequent(mild_stream, exact_mild):
    phi = 0.05
    counter = SpaceSaving(capacity=50)
    counter.process_many(mild_stream)
    answered = {entry.element for entry in counter.frequent(phi)}
    threshold = phi * len(mild_stream)
    for element, truth in exact_mild.counts().items():
        if truth > threshold:
            assert element in answered


def test_guaranteed_frequent_has_no_false_positives(mild_stream, exact_mild):
    phi = 0.02
    counter = SpaceSaving(capacity=80)
    counter.process_many(mild_stream)
    threshold = phi * len(mild_stream)
    for entry in counter.guaranteed_frequent(phi):
        assert exact_mild.estimate(entry.element) > threshold


def test_top_k_matches_exact_on_skewed(skewed_stream, exact_skewed):
    counter = SpaceSaving(capacity=60)
    counter.process_many(skewed_stream)
    got = [entry.element for entry in counter.top_k(5)]
    expected = [element for element, _ in exact_skewed.top_k(5)]
    assert got == expected


def test_kth_frequency_and_top_k_membership(skewed_stream):
    counter = SpaceSaving(capacity=60)
    counter.process_many(skewed_stream)
    kth = counter.kth_frequency(3)
    top3 = counter.top_k(3)
    assert top3[-1].count == kth
    assert counter.is_in_top_k(top3[0].element, 3)


def test_kth_frequency_with_too_few_elements():
    counter = SpaceSaving(capacity=5)
    counter.process("only")
    assert counter.kth_frequency(3) == 0


def test_bulk_equals_repeated_singles():
    bulk = SpaceSaving(capacity=4)
    single = SpaceSaving(capacity=4)
    updates = [("a", 3), ("b", 1), ("a", 2), ("c", 4), ("d", 2)]
    for element, count in updates:
        bulk.process_bulk(element, count)
        for _ in range(count):
            single.process(element)
    assert bulk.counts() == single.counts()
    assert bulk.processed == single.processed


def test_process_bulk_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        SpaceSaving(capacity=4).process_bulk("a", 0)


def test_frequent_validates_phi():
    counter = SpaceSaving(capacity=4)
    with pytest.raises(ConfigurationError):
        counter.frequent(0.0)
    with pytest.raises(ConfigurationError):
        counter.frequent(1.0)


def test_top_k_validates_k():
    with pytest.raises(ConfigurationError):
        SpaceSaving(capacity=4).top_k(0)


def test_from_entries_roundtrip():
    entries = [
        CounterEntry("a", 10, 1),
        CounterEntry("b", 7, 0),
        CounterEntry("c", 2, 2),
    ]
    counter = SpaceSaving.from_entries(3, entries, processed=19)
    assert counter.estimate("a") == 10
    assert counter.error("a") == 1
    assert counter.processed == 19
    counter.summary.check_invariants()


def test_from_entries_truncates_to_capacity():
    entries = [CounterEntry(i, 10 - i) for i in range(10)]
    counter = SpaceSaving.from_entries(3, entries, processed=100)
    assert len(counter) == 3
    assert [e.element for e in counter.top_k(3)] == [0, 1, 2]


def test_epsilon_property():
    assert SpaceSaving(capacity=20).epsilon == pytest.approx(0.05)
