"""Unit and property tests for Lossy Counting."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lossy_counting import LossyCounting
from repro.errors import ConfigurationError


def test_width_is_ceil_inverse_epsilon():
    assert LossyCounting(0.1).width == 10
    assert LossyCounting(0.3).width == 4


@pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.5])
def test_invalid_epsilon(epsilon):
    with pytest.raises(ConfigurationError):
        LossyCounting(epsilon)


def test_exact_within_first_round():
    counter = LossyCounting(0.1)  # width 10
    counter.process_many(["a", "b", "a"])
    assert counter.estimate("a") == 2
    assert counter.estimate("b") == 1


def test_prune_drops_stale_singletons():
    counter = LossyCounting(0.25)  # width 4, prune every 4 elements
    counter.process_many(["a", "b", "c", "d"])  # round 1 ends: all f=1, d=0
    # f + delta = 1 <= 1 -> all pruned
    assert len(counter) == 0
    assert counter.current_round == 2


def test_frequent_elements_survive_pruning(mild_stream, exact_mild):
    counter = LossyCounting(0.005)
    counter.process_many(mild_stream)
    threshold = 0.02 * len(mild_stream)
    for element, truth in exact_mild.counts().items():
        if truth > threshold:
            assert element in counter


def test_estimates_never_overestimate(mild_stream, exact_mild):
    counter = LossyCounting(0.01)
    counter.process_many(mild_stream)
    for entry in counter.entries():
        assert entry.count <= exact_mild.estimate(entry.element)


def test_undercount_bounded_by_eps_n(mild_stream, exact_mild):
    epsilon = 0.01
    counter = LossyCounting(epsilon)
    counter.process_many(mild_stream)
    for entry in counter.entries():
        truth = exact_mild.estimate(entry.element)
        assert truth - entry.count <= epsilon * len(mild_stream)


def test_frequent_query_guarantee(mild_stream, exact_mild):
    phi = 0.03
    counter = LossyCounting(0.005)
    counter.process_many(mild_stream)
    answered = {entry.element for entry in counter.frequent(phi)}
    for element, truth in exact_mild.counts().items():
        if truth > phi * len(mild_stream):
            assert element in answered


def test_space_stays_small_on_uniform_churn():
    counter = LossyCounting(0.01)
    counter.process_many(range(20_000))  # all distinct
    # O((1/eps) log(eps N)) = 100 * log(200) ~ 530
    assert len(counter) <= 800


@given(
    stream=st.lists(st.integers(min_value=0, max_value=20), max_size=300),
    epsilon=st.sampled_from([0.05, 0.1, 0.25]),
)
@settings(max_examples=100, deadline=None)
def test_property_never_overestimates(stream, epsilon):
    counter = LossyCounting(epsilon)
    counter.process_many(stream)
    truth = Counter(stream)
    for entry in counter.entries():
        assert entry.count <= truth[entry.element]


@given(
    stream=st.lists(st.integers(min_value=0, max_value=20), max_size=300),
    epsilon=st.sampled_from([0.05, 0.1, 0.25]),
)
@settings(max_examples=100, deadline=None)
def test_property_undercount_bound(stream, epsilon):
    counter = LossyCounting(epsilon)
    counter.process_many(stream)
    truth = Counter(stream)
    for element, true_count in truth.items():
        assert counter.estimate(element) >= true_count - epsilon * len(stream) - 1
