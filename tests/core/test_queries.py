"""Unit tests for the §3.2 query model."""

import pytest

from repro.core.counters import ExactCounter
from repro.core.queries import (
    FrequentSetQuery,
    IntervalSchedule,
    PointFrequentQuery,
    PointTopKQuery,
    TopKSetQuery,
    answer,
    answer_all,
)
from repro.core.space_saving import SpaceSaving
from repro.errors import QueryError


@pytest.fixture()
def counter():
    ss = SpaceSaving(capacity=50)
    ss.process_many(["a"] * 50 + ["b"] * 30 + ["c"] * 15 + ["d"] * 5)
    return ss


def test_point_frequent_query(counter):
    assert answer(PointFrequentQuery("a", phi=0.2), counter) is True
    assert answer(PointFrequentQuery("d", phi=0.2), counter) is False
    assert answer(PointFrequentQuery("missing", phi=0.2), counter) is False


def test_point_topk_query(counter):
    assert answer(PointTopKQuery("a", k=2), counter) is True
    assert answer(PointTopKQuery("b", k=2), counter) is True
    assert answer(PointTopKQuery("d", k=2), counter) is False


def test_point_topk_with_fewer_monitored_than_k(counter):
    assert answer(PointTopKQuery("d", k=100), counter) is True


def test_frequent_set_query(counter):
    result = answer(FrequentSetQuery(phi=0.25), counter)
    assert [entry.element for entry in result] == ["a", "b"]


def test_topk_set_query(counter):
    result = answer(TopKSetQuery(k=3), counter)
    assert [entry.element for entry in result] == ["a", "b", "c"]


def test_queries_work_with_exact_counter():
    exact = ExactCounter()
    exact.process_many(["x"] * 9 + ["y"])
    assert answer(PointFrequentQuery("x", phi=0.5), exact) is True
    assert [e.element for e in answer(TopKSetQuery(k=1), exact)] == ["x"]


@pytest.mark.parametrize(
    "query_factory",
    [
        lambda: PointFrequentQuery("a", phi=0.0),
        lambda: PointFrequentQuery("a", phi=1.0),
        lambda: PointTopKQuery("a", k=0),
        lambda: FrequentSetQuery(phi=2.0),
        lambda: TopKSetQuery(k=0),
    ],
)
def test_query_validation(query_factory):
    with pytest.raises(QueryError):
        query_factory()


def test_answer_rejects_unknown_query(counter):
    with pytest.raises(QueryError):
        answer("not a query", counter)


def test_interval_schedule_drives_queries():
    counter = SpaceSaving(capacity=10)
    schedule = IntervalSchedule((TopKSetQuery(k=1),), every_updates=5)
    stream = ["a", "a", "b", "a", "b", "c", "a", "a", "b", "a"]
    answers = answer_all(stream, counter, schedule)
    assert [a.position for a in answers] == [5, 10]
    assert all(a.result[0].element == "a" for a in answers)


def test_continuous_schedule_answers_every_update():
    counter = SpaceSaving(capacity=10)
    schedule = IntervalSchedule.continuous([PointFrequentQuery("a", 0.6)])
    answers = answer_all(["a", "b", "a"], counter, schedule)
    assert len(answers) == 3
    # thresholds per position: 0.6, 1.2, 1.8 against counts 1, 1, 2
    assert [a.result for a in answers] == [True, False, True]


def test_schedule_validation():
    with pytest.raises(QueryError):
        IntervalSchedule((), every_updates=5)
    with pytest.raises(QueryError):
        IntervalSchedule((TopKSetQuery(k=1),), every_updates=0)


def test_drive_without_schedule_counts_silently():
    counter = SpaceSaving(capacity=10)
    assert answer_all(["a", "b"], counter) == []
    assert counter.processed == 2
