"""Unit tests for counter records and the exact baseline."""

from repro.core.counters import CounterEntry, ExactCounter, FrequencyCounter
from repro.core.space_saving import SpaceSaving


def test_counter_entry_guaranteed():
    entry = CounterEntry("a", count=10, error=3)
    assert entry.guaranteed == 7


def test_exact_counter_basics():
    counter = ExactCounter()
    counter.process_many(["a", "b", "a"])
    assert counter.estimate("a") == 2
    assert counter.estimate("missing") == 0
    assert counter.processed == 3
    assert len(counter) == 2
    assert "a" in counter


def test_exact_counter_entries_sorted():
    counter = ExactCounter()
    counter.process_many(["x"] * 3 + ["y"] * 5 + ["z"])
    entries = counter.entries()
    assert [e.element for e in entries] == ["y", "x", "z"]
    assert all(e.error == 0 for e in entries)


def test_exact_counter_top_k_and_frequent():
    counter = ExactCounter()
    counter.process_many(["x"] * 6 + ["y"] * 3 + ["z"])
    assert counter.top_k(2) == [("x", 6), ("y", 3)]
    assert counter.frequent(2.5) == [("x", 6), ("y", 3)]


def test_counts_returns_a_copy():
    counter = ExactCounter()
    counter.process("a")
    snapshot = counter.counts()
    snapshot["a"] = 999
    assert counter.estimate("a") == 1


def test_protocol_satisfied_by_both_counters():
    assert isinstance(ExactCounter(), FrequencyCounter)
    assert isinstance(SpaceSaving(capacity=4), FrequencyCounter)
