"""Property-based tests of Space Saving's guarantees (hypothesis)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.space_saving import SpaceSaving

_streams = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=400
)
_capacities = st.integers(min_value=1, max_value=20)


@given(stream=_streams, capacity=_capacities)
@settings(max_examples=150, deadline=None)
def test_estimates_never_underestimate(stream, capacity):
    counter = SpaceSaving(capacity=capacity)
    counter.process_many(stream)
    truth = Counter(stream)
    for element, true_count in truth.items():
        estimate = counter.estimate(element)
        if estimate:
            assert estimate >= true_count


@given(stream=_streams, capacity=_capacities)
@settings(max_examples=150, deadline=None)
def test_estimate_minus_error_never_overestimates(stream, capacity):
    counter = SpaceSaving(capacity=capacity)
    counter.process_many(stream)
    truth = Counter(stream)
    for entry in counter.entries():
        assert entry.count - entry.error <= truth[entry.element]


@given(stream=_streams, capacity=_capacities)
@settings(max_examples=150, deadline=None)
def test_total_count_is_conserved(stream, capacity):
    counter = SpaceSaving(capacity=capacity)
    counter.process_many(stream)
    assert counter.summary.total_count == len(stream)


@given(stream=_streams, capacity=_capacities)
@settings(max_examples=150, deadline=None)
def test_min_freq_bounded_by_n_over_m(stream, capacity):
    counter = SpaceSaving(capacity=capacity)
    counter.process_many(stream)
    assert counter.max_error() <= len(stream) / capacity


@given(stream=_streams, capacity=_capacities)
@settings(max_examples=100, deadline=None)
def test_structure_invariants_hold(stream, capacity):
    counter = SpaceSaving(capacity=capacity)
    for element in stream:
        counter.process(element)
    counter.summary.check_invariants()
    assert len(counter) <= capacity


@given(stream=_streams, capacity=_capacities)
@settings(max_examples=100, deadline=None)
def test_exact_when_alphabet_fits(stream, capacity):
    truth = Counter(stream)
    if len(truth) > capacity:
        return  # only the exact regime is asserted here
    counter = SpaceSaving(capacity=capacity)
    counter.process_many(stream)
    for element, true_count in truth.items():
        assert counter.estimate(element) == true_count
        assert counter.error(element) == 0


@given(stream=_streams, capacity=_capacities)
@settings(max_examples=100, deadline=None)
def test_frequent_has_no_false_negatives(stream, capacity):
    """Every element above N/capacity must be monitored and reported."""
    counter = SpaceSaving(capacity=capacity)
    counter.process_many(stream)
    truth = Counter(stream)
    threshold = len(stream) / capacity
    for element, true_count in truth.items():
        if true_count > threshold:
            assert element in counter


@given(
    updates=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=60,
    ),
    capacity=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=100, deadline=None)
def test_bulk_processing_equals_singles(updates, capacity):
    """process_bulk(e, k) is equivalent to k singleton updates."""
    bulk = SpaceSaving(capacity=capacity)
    single = SpaceSaving(capacity=capacity)
    for element, count in updates:
        bulk.process_bulk(element, count)
        for _ in range(count):
            single.process(element)
    assert bulk.counts() == single.counts()
