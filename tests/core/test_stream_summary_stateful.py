"""Model-based stateful testing of StreamSummary (hypothesis).

A RuleBasedStateMachine drives the structure with arbitrary interleaved
inserts, increments, evictions and removals, mirroring every operation
in a plain dict model; after each rule the structure must match the
model exactly and pass its own invariant checks.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.stream_summary import StreamSummary

_elements = st.integers(min_value=0, max_value=15)


class SummaryMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.summary = StreamSummary()
        self.model = {}

    @rule(element=_elements, count=st.integers(min_value=1, max_value=5))
    def insert(self, element, count):
        if element in self.model:
            return
        self.summary.insert(element, count=count)
        self.model[element] = count

    @precondition(lambda self: self.model)
    @rule(data=st.data(), by=st.integers(min_value=1, max_value=7))
    def increment(self, data, by):
        element = data.draw(st.sampled_from(sorted(self.model)))
        self.summary.increment(element, by=by)
        self.model[element] += by

    @precondition(lambda self: self.model)
    @rule()
    def evict_min(self):
        victim = self.summary.evict_min()
        min_count = min(self.model.values())
        assert self.model[victim.element] == min_count
        del self.model[victim.element]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        element = data.draw(st.sampled_from(sorted(self.model)))
        self.summary.remove(element)
        del self.model[element]

    @invariant()
    def matches_model(self):
        assert len(self.summary) == len(self.model)
        for element, count in self.model.items():
            assert self.summary.count(element) == count
        assert self.summary.total_count == sum(self.model.values())
        if self.model:
            assert self.summary.min_freq == min(self.model.values())
            assert self.summary.max_freq == max(self.model.values())

    @invariant()
    def structure_is_sound(self):
        self.summary.check_invariants()


TestSummaryStateful = SummaryMachine.TestCase
TestSummaryStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
