"""Unit tests for the sketch baselines (Count-Min, Count Sketch)."""

import pytest

from repro.core.sketches import CountMinSketch, CountSketch
from repro.errors import ConfigurationError


def test_cms_dimensions_from_eps_delta():
    sketch = CountMinSketch(epsilon=0.01, delta=0.01, seed=0)
    assert sketch.width >= 100
    assert sketch.depth >= 4


@pytest.mark.parametrize(
    "kwargs",
    [
        {"epsilon": 0.0},
        {"epsilon": 1.0},
        {"delta": 0.0},
        {"track_candidates": -1},
    ],
)
def test_cms_invalid_parameters(kwargs):
    with pytest.raises(ConfigurationError):
        CountMinSketch(**kwargs)


def test_cms_never_underestimates(mild_stream, exact_mild):
    sketch = CountMinSketch(epsilon=0.002, delta=0.01, seed=7)
    sketch.process_many(mild_stream)
    for element, truth in exact_mild.counts().items():
        assert sketch.estimate(element) >= truth


def test_cms_error_bound_mostly_holds(mild_stream, exact_mild):
    epsilon = 0.01
    sketch = CountMinSketch(epsilon=epsilon, delta=0.01, seed=7)
    sketch.process_many(mild_stream)
    bound = epsilon * len(mild_stream)
    violations = sum(
        1
        for element, truth in exact_mild.counts().items()
        if sketch.estimate(element) - truth > bound
    )
    # the bound holds with probability 1 - delta per query
    assert violations <= 0.05 * len(exact_mild)


def test_cms_conservative_update_tightens(mild_stream, exact_mild):
    plain = CountMinSketch(epsilon=0.02, delta=0.05, seed=9)
    conservative = CountMinSketch(
        epsilon=0.02, delta=0.05, conservative=True, seed=9
    )
    plain.process_many(mild_stream)
    conservative.process_many(mild_stream)
    for element in list(exact_mild.counts())[:50]:
        assert conservative.estimate(element) <= plain.estimate(element)
        assert conservative.estimate(element) >= exact_mild.estimate(element)


def test_cms_candidate_tracking_finds_heavy_hitters(skewed_stream, exact_skewed):
    sketch = CountMinSketch(
        epsilon=0.005, delta=0.01, track_candidates=10, seed=3
    )
    sketch.process_many(skewed_stream)
    top = [entry.element for entry in sketch.top_k(3)]
    expected = [element for element, _ in exact_skewed.top_k(3)]
    assert top == expected


def test_cms_without_tracking_has_no_entries(skewed_stream):
    sketch = CountMinSketch(epsilon=0.01, delta=0.1, seed=1)
    sketch.process_many(skewed_stream)
    assert sketch.entries() == []


def test_cms_update_validates_count():
    with pytest.raises(ConfigurationError):
        CountMinSketch(seed=0).update("a", 0)


def test_count_sketch_unbiasedness_on_heavy_element(skewed_stream, exact_skewed):
    sketch = CountSketch(width=2048, depth=5, seed=11)
    sketch.process_many(skewed_stream)
    element, truth = exact_skewed.top_k(1)[0]
    assert abs(sketch.estimate(element) - truth) <= 0.05 * truth + 5


def test_count_sketch_for_error_sizing():
    sketch = CountSketch.for_error(0.1, delta=0.05, seed=0)
    assert sketch.width >= 300
    assert sketch.depth >= 2


@pytest.mark.parametrize(
    "kwargs", [{"width": 0}, {"depth": 0}, {"track_candidates": -2}]
)
def test_count_sketch_invalid_parameters(kwargs):
    with pytest.raises(ConfigurationError):
        CountSketch(**kwargs)


def test_count_sketch_candidates_and_queries(skewed_stream, exact_skewed):
    sketch = CountSketch(width=1024, depth=5, track_candidates=10, seed=2)
    sketch.process_many(skewed_stream)
    top = [entry.element for entry in sketch.top_k(2)]
    expected = [element for element, _ in exact_skewed.top_k(2)]
    assert top == expected
    frequent = sketch.frequent(0.1)
    assert all(e.count > 0.1 * len(skewed_stream) for e in frequent)


def test_count_sketch_estimate_clamped_at_zero():
    sketch = CountSketch(width=4, depth=1, seed=0)
    sketch.process("x")
    assert sketch.estimate("definitely-absent-key") >= 0
