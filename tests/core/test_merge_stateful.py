"""Model-based stateful testing of summary merging (hypothesis).

The machine grows a pool of per-partition SpaceSaving summaries and
keeps the true counts of every partitioned element.  After each step
the hierarchical (tree) merge must agree entry-for-entry with the
serial fold, must never alias one of its inputs, and the merged error
fields must bracket the true counts in both directions.
"""

import collections

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.merge import hierarchical_merge, merge_space_saving
from repro.core.space_saving import SpaceSaving
from repro.schedcheck.auditor import audit_space_saving

_elements = st.integers(min_value=0, max_value=11)
_PART_CAPACITY = 6


def _state(counter):
    return sorted(
        (entry.element, entry.count, entry.error)
        for entry in counter.entries()
    )


class MergeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.parts = []
        self.truth = collections.Counter()

    @rule(chunk=st.lists(_elements, min_size=0, max_size=20))
    def add_partition(self, chunk):
        part = SpaceSaving(capacity=_PART_CAPACITY)
        part.process_many(chunk)
        self.parts.append(part)
        self.truth.update(chunk)

    @precondition(lambda self: self.parts)
    @rule(data=st.data(), chunk=st.lists(_elements, min_size=1, max_size=15))
    def feed_partition(self, data, chunk):
        index = data.draw(
            st.integers(min_value=0, max_value=len(self.parts) - 1)
        )
        self.parts[index].process_many(chunk)
        self.truth.update(chunk)

    @invariant()
    def hierarchical_equals_serial(self):
        if not self.parts:
            return
        serial = merge_space_saving(self.parts)
        tree = hierarchical_merge(self.parts)
        assert _state(tree) == _state(serial)
        assert tree.processed == serial.processed == sum(self.truth.values())
        audit_space_saving(serial, "merge-serial", merged=True)
        audit_space_saving(tree, "merge-tree", merged=True)

    @invariant()
    def merge_never_aliases_inputs(self):
        if not self.parts:
            return
        before = [_state(part) for part in self.parts]
        merged = hierarchical_merge(self.parts)
        assert all(merged is not part for part in self.parts)
        merged.process_many([999] * 3)  # mutate the result...
        after = [_state(part) for part in self.parts]
        assert before == after  # ...and the inputs must not move

    @invariant()
    def error_fields_bracket_truth(self):
        """For monitored elements: count - error <= true <= count + error."""
        if not self.parts:
            return
        merged = merge_space_saving(self.parts)
        for entry in merged.entries():
            truth = self.truth[entry.element]
            assert entry.count - entry.error <= truth
            assert truth <= entry.count + entry.error


TestMergeStateful = MergeMachine.TestCase
TestMergeStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
