"""Differential tests: vectorized sketch kernels vs the scalar paths.

The vectorized lanes must be *bit-exact* against the scalar reference —
same hash cells, same table, same estimates — so every test here
compares full tables, not just top-k answers.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import numpy as np
import pytest

from repro.core.sketches.count_min import CountMinSketch, _UniversalHash
from repro.core.sketches.count_sketch import CountSketch
from repro.core.sketches.kernels import (
    MERSENNE_PRIME,
    collision_free_groups,
    row_hashes,
    sign_from_bits,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _random_codes(rng, n):
    """Codes spanning the full int64 coding range, both parities."""
    small = rng.integers(-(1 << 20), 1 << 20, size=n // 2)
    big = rng.integers(-(1 << 62), 1 << 62, size=n - n // 2)
    codes = np.concatenate([small, big])
    rng.shuffle(codes)
    return codes.astype(np.int64)


class TestRowHashKernel:
    def test_matches_scalar_universal_hash(self):
        rng = np.random.default_rng(5)
        codes = _random_codes(rng, 500)
        width = 1237
        hashes = [_UniversalHash(random.Random(900 + row), width)
                  for row in range(4)]
        a = np.array([h.a for h in hashes], dtype=np.uint64)
        b = np.array([h.b for h in hashes], dtype=np.uint64)
        cells = row_hashes(codes, a, b, width)
        for row, h in enumerate(hashes):
            expected = [h(int(code)) for code in codes]
            assert cells[row].tolist() == expected

    def test_boundary_codes(self):
        h = _UniversalHash(random.Random(3), 97)
        a = np.array([h.a], dtype=np.uint64)
        b = np.array([h.b], dtype=np.uint64)
        edge = np.array(
            [0, 1, -1, MERSENNE_PRIME - 1, MERSENNE_PRIME,
             MERSENNE_PRIME + 1, (1 << 62) - 1, -(1 << 62)],
            dtype=np.int64,
        )
        cells = row_hashes(edge, a, b, 97)
        assert cells[0].tolist() == [h(int(code)) for code in edge]

    def test_sign_from_bits(self):
        bits = np.array([[0, 1, 1, 0]], dtype=np.intp)
        assert sign_from_bits(bits).tolist() == [[-1, 1, 1, -1]]


class TestCollisionFreeGroups:
    def test_groups_partition_the_batch(self):
        rng = np.random.default_rng(9)
        cells = rng.integers(0, 7, size=(3, 64)).astype(np.intp)
        spans = list(collision_free_groups(cells))
        assert spans[0][0] == 0
        assert spans[-1][1] == 64
        for (_, stop), (nxt, _) in zip(spans, spans[1:]):
            assert stop == nxt

    def test_no_duplicate_cell_within_group(self):
        rng = np.random.default_rng(10)
        cells = rng.integers(0, 5, size=(4, 80)).astype(np.intp)
        for start, stop in collision_free_groups(cells):
            for row in cells:
                segment = row[start:stop].tolist()
                assert len(segment) == len(set(segment))

    def test_collision_free_batch_is_one_group(self):
        cells = np.arange(24, dtype=np.intp).reshape(2, 12) % 101
        assert list(collision_free_groups(cells)) == [(0, 12)]


def _chunked(stream, size=257):
    for index in range(0, len(stream), size):
        yield stream[index:index + size]


class TestCountMinDifferential:
    @pytest.mark.parametrize("conservative", [False, True])
    def test_vectorized_table_matches_scalar(self, mild_stream,
                                             conservative):
        scalar = CountMinSketch(epsilon=0.005, delta=0.05, seed=21,
                                conservative=conservative)
        vector = CountMinSketch(epsilon=0.005, delta=0.05, seed=21,
                                conservative=conservative)
        for chunk in _chunked(mild_stream):
            codes, weights = vector.codec.encode_chunk(chunk)
            vector.process_weighted(codes, weights)
            # same coded order is the scalar reference semantics
            scalar_codes = [scalar.codec.encode_one(e) for e in chunk]
            assert sorted(set(scalar_codes)) == sorted(codes.tolist())
            for code, weight in zip(codes.tolist(), weights.tolist()):
                scalar.update_code(code, weight)
        assert np.array_equal(scalar.table, vector.table)
        assert scalar.processed == vector.processed == len(mild_stream)
        for element in set(mild_stream[:200]):
            assert scalar.estimate(element) == vector.estimate(element)

    def test_process_many_preaggregates(self, mild_stream):
        """Satellite: one update per distinct element, same table."""
        per_element = CountMinSketch(epsilon=0.01, delta=0.05, seed=4)
        preagg = CountMinSketch(epsilon=0.01, delta=0.05, seed=4)
        for element in mild_stream:
            per_element.update(element, 1)
        preagg.process_many(mild_stream)
        assert np.array_equal(per_element.table, preagg.table)
        assert per_element.processed == preagg.processed

    def test_estimates_never_underestimate(self, mild_stream,
                                           exact_mild):
        sketch = CountMinSketch(epsilon=0.002, delta=0.01, seed=2)
        codes, weights = sketch.codec.encode_chunk(mild_stream)
        sketch.process_weighted(codes, weights)
        for element, truth in exact_mild.counts().items():
            assert sketch.estimate(element) >= truth
            assert sketch.estimate(element) <= truth + sketch.error_bound()


class TestCountSketchDifferential:
    def test_vectorized_table_matches_scalar(self, mild_stream):
        scalar = CountSketch(width=512, depth=5, seed=31)
        vector = CountSketch(width=512, depth=5, seed=31)
        for chunk in _chunked(mild_stream):
            codes, weights = vector.codec.encode_chunk(chunk)
            vector.process_weighted(codes, weights)
            for element in chunk:
                scalar.update(element, 1)
        assert np.array_equal(scalar.table, vector.table)
        for element in set(mild_stream[:200]):
            assert scalar.estimate(element) == vector.estimate(element)

    def test_process_many_matches_per_element(self, mild_stream):
        per_element = CountSketch(width=256, depth=3, seed=8)
        preagg = CountSketch(width=256, depth=3, seed=8)
        for element in mild_stream:
            per_element.update(element, 1)
        preagg.process_many(mild_stream)
        assert np.array_equal(per_element.table, preagg.table)


_DETERMINISM_SNIPPET = """
import json, sys
from repro.core.sketches.count_min import CountMinSketch
sketch = CountMinSketch(epsilon=0.01, delta=0.05, seed=77)
stream = [f"key-{i % 53}" for i in range(4000)] + [("t", i % 7) for i in range(500)]
sketch.process_many(stream)
doc = sketch.serialize()
doc["estimates"] = [sketch.estimate(f"key-{i}") for i in range(53)]
json.dump({"table": doc["table"], "estimates": doc["estimates"]}, sys.stdout)
"""


class TestHashSeedIndependence:
    """Satellite: sketches no longer depend on builtin ``hash()``.

    The same string-keyed stream must produce the *identical* table in
    subprocesses launched with different ``PYTHONHASHSEED`` values —
    the historical bug made cross-process merges silently meaningless.
    """

    def _run(self, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        result = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SNIPPET],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_table_identical_across_hash_seeds(self):
        first = self._run("0")
        second = self._run("12345")
        third = self._run("random")
        assert first == second == third
