"""Unit and property tests for Misra-Gries (Frequent)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.misra_gries import MisraGries
from repro.errors import ConfigurationError


def test_rejects_bad_k():
    with pytest.raises(ConfigurationError):
        MisraGries(0)


def test_exact_when_alphabet_fits():
    counter = MisraGries(5)
    counter.process_many(["a", "b", "a", "a"])
    assert counter.estimate("a") == 3
    assert counter.estimate("b") == 1
    assert counter.decrements == 0


def test_decrement_round_frees_counters():
    counter = MisraGries(2)
    counter.process_many(["a", "b", "c"])  # c triggers a decrement round
    assert counter.decrements == 1
    assert counter.estimate("c") == 0
    assert len(counter) <= 2


def test_majority_element_survives():
    stream = ["m"] * 60 + list(range(40))
    counter = MisraGries(10)
    counter.process_many(stream)
    assert counter.estimate("m") > 0
    assert counter.entries()[0].element == "m"


def test_undercount_bound(mild_stream, exact_mild):
    k = 40
    counter = MisraGries(k)
    counter.process_many(mild_stream)
    bound = len(mild_stream) / (k + 1)
    for element, truth in exact_mild.counts().items():
        estimate = counter.estimate(element)
        assert estimate <= truth
        assert estimate >= truth - bound


def test_frequent_no_false_negatives(mild_stream, exact_mild):
    phi = 0.05
    counter = MisraGries(60)
    counter.process_many(mild_stream)
    answered = {entry.element for entry in counter.frequent(phi)}
    for element, truth in exact_mild.counts().items():
        if truth > phi * len(mild_stream):
            assert element in answered


@given(
    stream=st.lists(st.integers(min_value=0, max_value=25), max_size=300),
    k=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=120, deadline=None)
def test_property_undercount_bounds(stream, k):
    counter = MisraGries(k)
    counter.process_many(stream)
    truth = Counter(stream)
    bound = len(stream) / (k + 1)
    for element, true_count in truth.items():
        estimate = counter.estimate(element)
        assert estimate <= true_count
        assert estimate >= true_count - bound
    assert len(counter) <= k
