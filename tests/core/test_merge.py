"""Unit and property tests for Space Saving summary merging."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import hierarchical_merge, merge_schedule, merge_space_saving
from repro.core.space_saving import SpaceSaving
from repro.errors import MergeError
from repro.workloads import block_partition


def _locals_for(stream, parts, capacity):
    locals_ = []
    for part in block_partition(stream, parts):
        counter = SpaceSaving(capacity=capacity)
        counter.process_many(part)
        locals_.append(counter)
    return locals_


def test_merge_empty_list_raises():
    with pytest.raises(MergeError):
        merge_space_saving([])
    with pytest.raises(MergeError):
        hierarchical_merge([])


def test_merge_single_part_is_identity(skewed_stream):
    local = SpaceSaving(capacity=30)
    local.process_many(skewed_stream)
    merged = merge_space_saving([local])
    assert merged.counts() == local.counts()
    assert merged.processed == local.processed


def test_merge_sums_processed(skewed_stream):
    locals_ = _locals_for(skewed_stream, 4, 30)
    merged = merge_space_saving(locals_)
    assert merged.processed == len(skewed_stream)


def test_merge_exact_when_capacity_fits(skewed_stream, exact_skewed):
    """With no evictions anywhere, the merge is exact."""
    distinct = len(exact_skewed)
    locals_ = _locals_for(skewed_stream, 4, distinct + 5)
    merged = merge_space_saving(locals_, capacity=distinct + 5)
    for element, truth in exact_skewed.counts().items():
        assert merged.estimate(element) == truth


def test_merged_estimate_plus_error_covers_truth(mild_stream, exact_mild):
    """A part that evicted the element contributes its min frequency to
    the merged *error*, so count + error upper-bounds the global truth."""
    locals_ = _locals_for(mild_stream, 4, 60)
    merged = merge_space_saving(locals_)
    entries = {entry.element: entry for entry in merged.entries()}
    for element, truth in exact_mild.top_k(20):
        entry = entries[element]
        assert entry.count + entry.error >= truth
        # and the heaviest hitters were never evicted anywhere: exact bound
        if truth > len(mild_stream) / 30:
            assert entry.count >= truth


def test_hierarchical_equals_serial(mild_stream):
    locals_ = _locals_for(mild_stream, 5, 40)
    serial = merge_space_saving(locals_)
    tree = hierarchical_merge(locals_)
    assert dict(serial.counts()) == dict(tree.counts())
    assert serial.processed == tree.processed


def test_merge_respects_capacity(mild_stream):
    locals_ = _locals_for(mild_stream, 4, 50)
    merged = merge_space_saving(locals_, capacity=10)
    assert len(merged) <= 10


def test_merge_schedule_shapes():
    assert merge_schedule(1) == []
    assert merge_schedule(2) == [[(0, 1)]]
    assert merge_schedule(4) == [[(0, 1), (2, 3)], [(0, 2)]]
    schedule = merge_schedule(5)
    # every structure except 0 is eventually folded into another
    folded = {j for level in schedule for _, j in level}
    assert folded == {1, 2, 3, 4}


def test_merge_schedule_levels_are_logarithmic():
    assert len(merge_schedule(16)) == 4
    assert len(merge_schedule(32)) == 5


def test_merge_schedule_rejects_nonpositive():
    with pytest.raises(MergeError):
        merge_schedule(0)


@given(
    stream=st.lists(st.integers(min_value=0, max_value=15), max_size=200),
    parts=st.integers(min_value=1, max_value=6),
    capacity=st.integers(min_value=4, max_value=20),
)
@settings(max_examples=80, deadline=None)
def test_property_merge_upper_bounds_truth(stream, parts, capacity):
    if not stream:
        return
    truth = Counter(stream)
    locals_ = _locals_for(stream, parts, capacity)
    merged = merge_space_saving(locals_)
    # every element still monitored has estimate >= its true count
    for entry in merged.entries():
        assert entry.count >= truth[entry.element] or len(truth) > capacity


@given(
    stream=st.lists(st.integers(min_value=0, max_value=15), max_size=200),
    parts=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=80, deadline=None)
def test_property_hierarchical_matches_serial(stream, parts):
    if not stream:
        return
    locals_ = _locals_for(stream, parts, 12)
    # tie order between equal counts is unspecified; compare as mappings
    assert dict(hierarchical_merge(locals_).counts()) == dict(
        merge_space_saving(locals_).counts()
    )


def test_hierarchical_merge_single_part_returns_independent_copy():
    """Regression: a single-part merge returned the input by reference,
    so updates to the 'merged' result mutated the source summary."""
    local = SpaceSaving(capacity=8)
    for element in ["a", "a", "b"]:
        local.process(element)
    merged = hierarchical_merge([local])
    assert merged is not local
    before = [(e.element, e.count) for e in local.entries()]
    merged.process_bulk("c", 5)
    assert [(e.element, e.count) for e in local.entries()] == before
    assert local.processed == 3
    assert merged.processed == 8


def test_merge_single_part_returns_independent_copy():
    local = SpaceSaving(capacity=8)
    local.process("a")
    merged = merge_space_saving([local])
    assert merged is not local
    merged.process("b")
    assert local.estimate("b") == 0
