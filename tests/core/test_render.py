"""Unit tests for the Figure 2 / Figure 10 ASCII renderers."""

from repro.core.render import render_concurrent_summary, render_summary
from repro.core.stream_summary import StreamSummary
from repro.cots.framework import CoTSRunConfig, run_cots


def test_render_empty_summary():
    assert render_summary(StreamSummary()) == "(empty summary)"


def test_render_figure2_example():
    summary = StreamSummary()
    for element in ["e1", "e3", "e3", "e2", "e2"]:
        if element in summary:
            summary.increment(element)
        else:
            summary.insert(element)
    text = render_summary(summary)
    lines = text.splitlines()
    assert lines[0] == "[freq 1]: 'e1'"
    assert lines[1].startswith("[freq 2]:")
    assert "'e2'" in lines[1] and "'e3'" in lines[1]


def test_render_abbreviates_long_buckets():
    summary = StreamSummary()
    for i in range(10):
        summary.insert(f"e{i}")
    text = render_summary(summary, max_elements=3)
    assert "... +7" in text


def test_render_concurrent_summary_shows_queue_and_owner():
    result = run_cots(
        ["a", "a", "b"], CoTSRunConfig(threads=2, capacity=8)
    )
    summary = result.extras["framework"].summary
    text = render_concurrent_summary(summary)
    assert "[freq 1 | queue 0 | free]:" in text
    assert "[freq 2 | queue 0 | free]:" in text
    assert "'a'" in text and "'b'" in text
