"""Unit tests for the sequential Stream Summary structure."""

import pytest

from repro.core.stream_summary import StreamSummary
from repro.errors import ReproError


def test_insert_and_count():
    summary = StreamSummary()
    summary.insert("a")
    assert summary.count("a") == 1
    assert "a" in summary
    assert len(summary) == 1
    summary.check_invariants()


def test_insert_duplicate_raises():
    summary = StreamSummary()
    summary.insert("a")
    with pytest.raises(ReproError):
        summary.insert("a")


def test_insert_with_count_and_error():
    summary = StreamSummary()
    node = summary.insert("a", count=5, error=2)
    assert node.count == 5
    assert node.error == 2
    assert summary.total_count == 5


def test_increment_moves_between_buckets():
    summary = StreamSummary()
    summary.insert("a")
    summary.insert("b")
    summary.increment("a")
    assert summary.count("a") == 2
    assert summary.count("b") == 1
    assert summary.frequencies() == [(1, 1), (2, 1)]
    summary.check_invariants()


def test_increment_reuses_existing_bucket():
    summary = StreamSummary()
    summary.insert("a")
    summary.insert("b")
    summary.increment("a")
    summary.increment("b")
    assert summary.frequencies() == [(2, 2)]
    summary.check_invariants()


def test_increment_unknown_element_raises():
    summary = StreamSummary()
    with pytest.raises(ReproError):
        summary.increment("missing")


def test_bulk_increment_skips_buckets():
    summary = StreamSummary()
    for name in "abc":
        summary.insert(name)
    summary.increment("b", by=2)
    summary.increment("c", by=7)
    assert summary.count("b") == 3
    assert summary.count("c") == 8
    assert summary.min_freq == 1
    assert summary.max_freq == 8
    summary.check_invariants()


def test_figure2_example_stream():
    """The paper's Figure 2: stream <e1, e3, e3, e2, e2>."""
    summary = StreamSummary()
    for element in ["e1", "e3", "e3", "e2", "e2"]:
        if element in summary:
            summary.increment(element)
        else:
            summary.insert(element)
    assert summary.count("e1") == 1
    assert summary.count("e2") == 2
    assert summary.count("e3") == 2
    assert summary.frequencies() == [(1, 1), (2, 2)]
    summary.check_invariants()


def test_min_and_max_tracking():
    summary = StreamSummary()
    summary.insert("a", count=3)
    summary.insert("b", count=1)
    summary.insert("c", count=9)
    assert summary.min_freq == 1
    assert summary.max_freq == 9
    assert summary.min_node().element == "b"


def test_evict_min_removes_a_minimum_element():
    summary = StreamSummary()
    summary.insert("low")
    summary.insert("high", count=10)
    victim = summary.evict_min()
    assert victim.element == "low"
    assert "low" not in summary
    assert summary.total_count == 10
    summary.check_invariants()


def test_evict_from_empty_raises():
    with pytest.raises(ReproError):
        StreamSummary().evict_min()


def test_remove_specific_element():
    summary = StreamSummary()
    summary.insert("a")
    summary.insert("b", count=4)
    summary.remove("b")
    assert "b" not in summary
    assert summary.total_count == 1
    with pytest.raises(ReproError):
        summary.remove("b")
    summary.check_invariants()


def test_entries_sorted_descending():
    summary = StreamSummary()
    summary.insert("a", count=2)
    summary.insert("b", count=7)
    summary.insert("c", count=5)
    entries = summary.entries()
    assert [e.element for e in entries] == ["b", "c", "a"]
    assert [e.count for e in entries] == [7, 5, 2]


def test_buckets_iterate_both_directions():
    summary = StreamSummary()
    for count, name in [(1, "a"), (5, "b"), (3, "c")]:
        summary.insert(name, count=count)
    ascending = [b.freq for b in summary.buckets()]
    descending = [b.freq for b in summary.buckets_desc()]
    assert ascending == [1, 3, 5]
    assert descending == [5, 3, 1]


def test_empty_summary_properties():
    summary = StreamSummary()
    assert summary.min_freq == 0
    assert summary.max_freq == 0
    assert summary.total_count == 0
    assert summary.count("anything") == 0
    assert summary.entries() == []
    assert summary.min_node() is None
    summary.check_invariants()


def test_insert_below_current_minimum():
    summary = StreamSummary()
    summary.insert("big", count=10)
    summary.insert("small", count=2)
    assert summary.min_freq == 2
    assert [b.freq for b in summary.buckets()] == [2, 10]
    summary.check_invariants()


def test_increment_rejects_nonpositive():
    summary = StreamSummary()
    summary.insert("a")
    with pytest.raises(ReproError):
        summary.increment("a", by=0)


def test_insert_rejects_nonpositive_count():
    with pytest.raises(ReproError):
        StreamSummary().insert("a", count=0)
