"""The scenario runner: every backend, metrics folding, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.scenarios import (
    BACKENDS,
    ScenarioParams,
    run_backend,
    run_scenario,
)

_PARAMS = ScenarioParams(length=1_500, alphabet=250, capacity=32, seed=3)


def test_backend_tuple_covers_the_matrix():
    assert BACKENDS == (
        "sequential",
        "cots",
        "mp-shm",
        "mp-pickle",
        "mp-one-table",
        "sketch-cm-vec",
    )


@pytest.mark.parametrize("backend", ["sequential", "cots"])
def test_in_process_backends_run_every_scenario_kind(backend):
    for name in ("stationary-zipf", "eviction-poison"):
        run = run_scenario(name, backend, _PARAMS, k=8, threads=2)
        assert run.backend == backend
        assert run.elements == _PARAMS.length
        assert run.accuracy.guarantee_violations == 0
        assert run.counter.processed == _PARAMS.length
        assert run.wall_seconds > 0


@pytest.mark.parametrize("backend", ["mp-shm", "mp-pickle"])
def test_mp_backends_score_with_merged_tolerance(backend):
    run = run_scenario(
        "hot-key-flood", backend, _PARAMS, k=8, workers=2
    )
    assert run.accuracy.guarantee_violations == 0
    assert run.accuracy.max_underestimate == 0
    assert run.counter.processed == _PARAMS.length


def test_sequential_and_cots_agree_on_the_summary():
    """Both in-process backends consume the identical stream; CoTS's
    merged summary must stay within Space Saving equivalence of the
    sequential one."""
    from repro.mp.driver import summaries_equivalent

    sequential = run_scenario("skew-drift", "sequential", _PARAMS, k=8)
    cots = run_scenario("skew-drift", "cots", _PARAMS, k=8, threads=4)
    assert summaries_equivalent(
        sequential.counter, cots.counter, k=8
    )


def test_metrics_fold_into_the_scenario_section():
    registry = MetricsRegistry()
    run = run_scenario(
        "flash-crowd", "sequential", _PARAMS, k=8, metrics=registry
    )
    snapshot = run.metrics
    assert snapshot["counters"]["scenario.stream.elements"] == (
        _PARAMS.length
    )
    assert snapshot["gauges"]["scenario.stream.distinct"] == run.distinct
    assert snapshot["gauges"]["scenario.accuracy.recall_at_k"] == (
        run.accuracy.recall_at_k
    )
    # the backend's own layer rides along in the same registry
    assert snapshot["counters"]["core.spacesaving.occurrences"] == (
        _PARAMS.length
    )


def test_metrics_disabled_by_default():
    run = run_scenario("flash-crowd", "sequential", _PARAMS, k=8)
    assert run.metrics == {}


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError, match="unknown backend"):
        run_backend([1, 2, 3], "gpu", capacity=4)


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        run_scenario("nope", "sequential", _PARAMS)


def test_throughput_property():
    run = run_scenario("stationary-zipf", "sequential", _PARAMS, k=8)
    assert run.throughput_eps == pytest.approx(
        run.elements / run.wall_seconds
    )
