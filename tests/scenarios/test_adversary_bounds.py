"""ε·N under attack: the adversaries saturate the bound, never break it.

The eviction poisoner is built against a specific capacity; these tests
run its stream into counters at exactly that capacity and one off either
side (``capacity - 1``, ``capacity``, ``capacity + 1``), through all
three counting lanes (per-element, batched ``process_many``,
pre-aggregated ``process_weighted``), and pin the cached bound metrics:
``max_error()`` (the summary's own cached min-frequency bound) must stay
within ε·N, the audited worst over-estimate must stay within ε·N, and
every lane must agree on all of it.
"""

import collections

import pytest

from repro.core.space_saving import SpaceSaving
from repro.obs.registry import MetricsRegistry
from repro.scenarios import (
    ScenarioParams,
    eviction_poison_stream,
    hot_key_flood_stream,
    run_scenario,
    score_accuracy,
)
from repro.scenarios.fuzzer import LANES, _lane_counter
from repro.testing import seed_matrix

CAPACITY = 48
STREAM = eviction_poison_stream(3_000, CAPACITY, seed=7)


@pytest.mark.parametrize("lane", LANES)
@pytest.mark.parametrize(
    "capacity", [CAPACITY - 1, CAPACITY, CAPACITY + 1]
)
def test_poisoned_stream_respects_epsilon_n_at_capacity_boundaries(
    lane, capacity
):
    counter = _lane_counter(STREAM, capacity, lane)
    truth = collections.Counter(STREAM)
    n = counter.processed
    assert n == len(STREAM)
    bound = n / capacity
    # the summary's own cached bound (min bucket frequency once full)
    assert counter.max_error() <= bound
    report = score_accuracy(counter, truth, k=10)
    assert report.guarantee_violations == 0
    assert report.max_underestimate == 0
    assert report.max_overestimate <= bound
    assert report.bound_excess == 0.0
    assert report.error_bound == bound


@pytest.mark.parametrize(
    "capacity", [CAPACITY - 1, CAPACITY, CAPACITY + 1]
)
def test_all_three_lanes_agree_on_the_cached_bound(capacity):
    """The cached bound metrics must be lane-independent: same
    max_error(), same audited error_bound, same processed count."""
    reports = {}
    max_errors = {}
    truth = collections.Counter(STREAM)
    for lane in LANES:
        counter = _lane_counter(STREAM, capacity, lane)
        reports[lane] = score_accuracy(counter, truth, k=10)
        max_errors[lane] = counter.max_error()
    bounds = {report.error_bound for report in reports.values()}
    assert len(bounds) == 1
    processed = {report.processed for report in reports.values()}
    assert processed == {len(STREAM)}
    # per-element and batched are count-identical, so their cached
    # min-frequency bound matches exactly; the weighted lane aggregates
    # in blocks but must still sit within the shared eps*N bound
    assert max_errors["per-element"] == max_errors["batched"]
    assert all(m <= len(STREAM) / capacity for m in max_errors.values())


def test_poisoner_actually_saturates_the_bound():
    """An adversary that leaves the bound slack is no adversary: at the
    targeted capacity the worst over-estimate must reach at least half
    of eps*N (empirically it sits within a few counts of the bound)."""
    counter = _lane_counter(STREAM, CAPACITY, "per-element")
    truth = collections.Counter(STREAM)
    report = score_accuracy(counter, truth, k=10)
    assert report.max_overestimate >= 0.5 * report.error_bound


def test_poisoner_degrades_topk_recall():
    """The probe half of the attack: victims with tiny true counts are
    reported in the top-k with inflated estimates, displacing truth."""
    counter = _lane_counter(STREAM, CAPACITY, "per-element")
    truth = collections.Counter(STREAM)
    report = score_accuracy(counter, truth, k=10)
    assert report.recall_at_k <= 0.5


@pytest.mark.parametrize("seed", seed_matrix(7, 19))
def test_flood_adversary_respects_bounds_too(seed):
    stream = hot_key_flood_stream(3_000, 400, CAPACITY, seed=seed)
    truth = collections.Counter(stream)
    for lane in LANES:
        counter = _lane_counter(stream, CAPACITY, lane)
        report = score_accuracy(counter, truth, k=10)
        assert report.guarantee_violations == 0, lane
        assert report.max_underestimate == 0, lane


def test_bound_metrics_are_pinned_in_the_registry():
    """The scenario runner's recorded gauges must equal the audited
    report values exactly (the 'cached bound' surface of the obs layer)."""
    registry = MetricsRegistry()
    run = run_scenario(
        "eviction-poison",
        "sequential",
        ScenarioParams(length=2_000, alphabet=200, capacity=CAPACITY, seed=7),
        k=10,
        metrics=registry,
    )
    gauges = registry.snapshot()["gauges"]
    assert gauges["scenario.accuracy.error_bound"] == (
        run.accuracy.error_bound
    )
    assert gauges["scenario.accuracy.max_overestimate"] == (
        run.accuracy.max_overestimate
    )
    assert gauges["scenario.accuracy.bound_excess"] == 0.0
    assert "scenario.accuracy.guarantee_violations" not in (
        registry.snapshot()["counters"]
    )
