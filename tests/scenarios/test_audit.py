"""The accuracy auditor: scoring semantics plus the mutation canary.

The canary follows ``tests/schedcheck/test_shrink_mutations.py``: inject
a deliberate off-by-one into the recall@k scoring seam and assert the
suite's own selfcheck — which the scenario runner executes before every
run — flags it.  A harness that cannot catch a planted bug proves
nothing about the absence of real ones.
"""

import collections

import pytest

import repro.scenarios.audit as audit
from repro.core.space_saving import SpaceSaving
from repro.errors import AuditError
from repro.scenarios import (
    ScenarioParams,
    run_scenario,
    score_accuracy,
    selfcheck,
    true_top_k,
)


def _count(stream, capacity):
    counter = SpaceSaving(capacity=capacity)
    counter.process_many(stream)
    return counter, collections.Counter(stream)


# ----------------------------------------------------------- scoring
def test_selfcheck_passes_on_healthy_code():
    selfcheck()


def test_exact_summary_scores_perfectly():
    stream = [0] * 8 + [1] * 5 + [2] * 3 + [3]
    counter, truth = _count(stream, capacity=16)   # ample: no eviction
    report = score_accuracy(counter, truth, k=3)
    assert report.recall_at_k == 1.0
    assert report.precision_at_k == 1.0
    assert report.max_overestimate == 0
    assert report.max_underestimate == 0
    assert report.guarantee_violations == 0
    assert report.ok


def test_true_top_k_breaks_ties_by_str():
    truth = {"b": 2, "a": 2, "c": 1, "d": 0}
    assert true_top_k(truth, 3) == ["a", "b", "c"]
    # zero-count elements never qualify
    assert true_top_k(truth, 4) == ["a", "b", "c"]


def test_overestimate_within_bound_is_not_a_violation():
    # capacity 3, the hand-computed selfcheck case: d is over-estimated
    # by 1 against a bound of 8/3
    stream = ["a"] * 4 + ["b"] * 2 + ["c", "d"]
    counter, truth = _count(stream, capacity=3)
    report = score_accuracy(counter, truth, k=3)
    assert report.max_overestimate == 1
    assert report.bound_excess == 0.0
    assert report.guarantee_violations == 0


def test_underestimate_is_flagged():
    """A summary claiming less than the truth breaks the upper-bound
    guarantee — build one artificially via from_entries."""
    stream = ["a"] * 10 + ["b"] * 2
    _, truth = _count(stream, capacity=4)
    counter = SpaceSaving(capacity=4)
    counter.summary.insert("a", count=5, error=0)   # truth is 10
    counter.summary.insert("b", count=2, error=0)
    counter._processed = 12
    report = score_accuracy(counter, truth, k=2)
    assert report.max_underestimate == 5
    assert report.guarantee_violations >= 1
    assert not report.ok


def test_guaranteed_floor_breach_is_flagged():
    stream = ["a"] * 4 + ["b"]
    _, truth = _count(stream, capacity=4)
    counter = SpaceSaving(capacity=4)
    counter.summary.insert("a", count=4, error=0)
    counter.summary.insert("b", count=3, error=0)   # floor 3 > truth 1
    counter._processed = 5
    report = score_accuracy(counter, truth, k=2)
    assert report.guarantee_violations >= 1


def test_missing_heavy_hitter_is_flagged_unless_merged():
    stream = ["hot"] * 50 + ["x", "y"]
    _, truth = _count(stream, capacity=4)
    counter = SpaceSaving(capacity=4)
    counter.summary.insert("x", count=1, error=0)
    counter.summary.insert("y", count=1, error=0)
    counter._processed = 52
    strict = score_accuracy(counter, truth, k=2)
    assert strict.guarantee_violations >= 1
    relaxed = score_accuracy(counter, truth, k=2, merged=True)
    # the merged lane tolerates the absence (merge truncation), but the
    # recall hit still shows
    assert relaxed.recall_at_k < 1.0


def test_empty_stream_scores_clean():
    counter = SpaceSaving(capacity=4)
    report = score_accuracy(counter, {}, k=5)
    assert report.ok
    assert report.recall_at_k == 1.0
    assert report.processed == 0


# ---------------------------------------------------- mutation canary
def test_mutated_recall_scoring_turns_selfcheck_red(monkeypatch):
    """Inject an off-by-one into the hits@k seam: selfcheck must fail."""
    healthy = audit.hits_at_k

    def off_by_one(answer, exact):
        return healthy(answer, exact) + 1

    monkeypatch.setattr(audit, "hits_at_k", off_by_one)
    with pytest.raises(AuditError, match="selfcheck failed"):
        audit.selfcheck()


def test_mutated_scoring_fails_the_whole_scenario_run(monkeypatch):
    """The runner calls selfcheck() first, so a corrupted scorer cannot
    produce a single scenario result."""
    healthy = audit.hits_at_k
    monkeypatch.setattr(
        audit, "hits_at_k", lambda a, e: healthy(a, e) + 1
    )
    with pytest.raises(AuditError, match="selfcheck failed"):
        run_scenario(
            "stationary-zipf",
            "sequential",
            ScenarioParams(length=500, alphabet=100, capacity=16, seed=1),
        )


def test_mutated_bound_scoring_turns_selfcheck_red(monkeypatch):
    """Same canary for the bound arithmetic: shrink the believed bound
    and the pinned bound_excess/error_bound constants catch it."""
    import repro.scenarios.audit as audit_module

    original = audit_module.score_accuracy

    def shifted(counter, truth, k=10, merged=False):
        report = original(counter, truth, k=k, merged=merged)
        object.__setattr__(report, "error_bound", report.error_bound - 1)
        return report

    monkeypatch.setattr(audit_module, "score_accuracy", shifted)
    with pytest.raises(AuditError, match="selfcheck failed"):
        audit_module.selfcheck()
