"""The scenario registry: determinism, coverage, validation."""

import pytest

from repro.errors import ConfigurationError, StreamError
from repro.scenarios import (
    ATTACK_KEY_BASE,
    SCENARIOS,
    ScenarioParams,
    build_stream,
    get_scenario,
)
from repro.testing import seed_matrix

_PARAMS = ScenarioParams(length=1_200, alphabet=200, capacity=32, seed=5)


def test_registry_covers_the_issue_matrix():
    """At least the six documented scenarios, both kinds present."""
    assert len(SCENARIOS) >= 6
    kinds = {scenario.kind for scenario in SCENARIOS.values()}
    assert kinds == {"benign", "adversarial"}
    adversarial = [
        s.name for s in SCENARIOS.values() if s.kind == "adversarial"
    ]
    assert "hot-key-flood" in adversarial
    assert "eviction-poison" in adversarial


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_scenario_is_deterministic(name):
    first = build_stream(name, _PARAMS)
    second = build_stream(name, _PARAMS)
    assert first == second
    assert len(first) == _PARAMS.length


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", seed_matrix(5, 23))
def test_seed_changes_the_stream_but_not_its_length(name, seed):
    base = build_stream(name, _PARAMS)
    other = build_stream(
        name,
        ScenarioParams(
            length=_PARAMS.length,
            alphabet=_PARAMS.alphabet,
            capacity=_PARAMS.capacity,
            seed=seed + 1000,
        ),
    )
    assert len(other) == len(base)
    # different seeds should give different streams (all our scenarios
    # have a random component somewhere)
    assert other != base


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_elements_are_ints(name):
    stream = build_stream(name, _PARAMS)
    assert all(isinstance(e, int) for e in stream)


def test_benign_scenarios_stay_below_attack_key_space():
    for scenario in SCENARIOS.values():
        if scenario.kind != "benign":
            continue
        stream = scenario.build(_PARAMS)
        assert all(e < ATTACK_KEY_BASE for e in stream), scenario.name


def test_get_scenario_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        get_scenario("nope")


def test_params_validation():
    with pytest.raises(StreamError):
        ScenarioParams(length=-1)
    with pytest.raises(StreamError):
        ScenarioParams(alphabet=0)
    with pytest.raises(ConfigurationError):
        ScenarioParams(capacity=0)


def test_zero_length_streams():
    params = ScenarioParams(length=0, alphabet=10, capacity=4, seed=0)
    for name in SCENARIOS:
        assert build_stream(name, params) == []
