"""The scenario fuzzer: composition, lane differential, ddmin shrinking.

The centrepiece is the injected-bug integration test: a context-manager
patch (the same plumbing schedcheck's mutations use) breaks the
production ``process_weighted`` lane, the fuzzer detects the divergence,
hands the composite stream to schedcheck's ddmin, and the shrunk
reproducer — a handful of elements — still fails under the patch and
passes without it.  That proves the detect → shrink → render pipeline
end to end.
"""

import contextlib

import pytest

from repro.core.space_saving import SpaceSaving
from repro.errors import AuditError, ConfigurationError, ReproError
from repro.obs.registry import MetricsRegistry
from repro.scenarios import ScenarioParams, check_stream, fuzz
from repro.scenarios.fuzzer import LANES, _lane_counter

_SMALL = ScenarioParams(length=400, alphabet=100, capacity=24)


# ------------------------------------------------------------ lanes
def test_lanes_agree_on_a_benign_stream():
    stream = [i % 7 for i in range(200)]
    check_stream(stream, capacity=16)  # must not raise


def test_lanes_agree_on_empty_stream():
    check_stream([], capacity=4)


def test_unknown_lane_rejected():
    with pytest.raises(ConfigurationError, match="unknown lane"):
        _lane_counter([1], 4, "vectorized")


@pytest.mark.parametrize("lane", LANES)
def test_each_lane_counts_everything(lane):
    stream = list(range(50)) * 3
    counter = _lane_counter(stream, 64, lane)
    assert counter.processed == 150


# ---------------------------------------------------------- healthy fuzz
def test_fuzz_healthy_run_is_green():
    report = fuzz(4, seed=0, params=_SMALL)
    assert report.ok
    assert report.iterations == 4
    assert "ok" in report.summary_line()


def test_fuzz_is_deterministic():
    first = fuzz(3, seed=5, params=_SMALL)
    second = fuzz(3, seed=5, params=_SMALL)
    assert first == second


def test_fuzz_records_metrics():
    registry = MetricsRegistry()
    fuzz(2, seed=0, params=_SMALL, metrics=registry)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["scenario.fuzz.compositions"] == 2
    assert "scenario.fuzz.failures" not in snapshot["counters"]


def test_fuzz_rejects_negative_iterations():
    with pytest.raises(ConfigurationError):
        fuzz(-1)


# ----------------------------------------- injected bug -> ddmin shrink
@contextlib.contextmanager
def _inflated_weighted_lane():
    """Deliberate production bug: the first (element, weight) pair of
    every bulk-weighted update gains one phantom occurrence once its
    weight exceeds 2 — an off-by-one only visible on aggregated paths."""
    original = SpaceSaving.process_weighted

    def corrupted(self, pairs):
        pairs = list(pairs)
        if pairs:
            element, weight = pairs[0]
            if weight > 2:
                pairs[0] = (element, weight + 1)
        return original(self, pairs)

    SpaceSaving.process_weighted = corrupted
    try:
        yield
    finally:
        SpaceSaving.process_weighted = original


#: the documented reproduction seed (docs/scenarios.md): with the
#: weighted-lane mutation armed, composition 0 of seed 0 already fails
_DOCUMENTED_SEED = 0


def test_injected_bug_is_caught_shrunk_and_rendered():
    report = fuzz(
        2,
        seed=_DOCUMENTED_SEED,
        params=_SMALL,
        patch=_inflated_weighted_lane,
    )
    assert not report.ok, "the planted off-by-one went undetected"
    failure = report.failures[0]
    # the composite stream was hundreds of elements; ddmin must boil it
    # down to a near-minimal core (3 occurrences of one element is the
    # smallest stream where the corrupted branch fires)
    assert failure.original_length >= 100
    assert 1 <= len(failure.minimal_stream) <= 8
    assert failure.shrink_replays > 0
    # the shrunk stream is a genuine reproducer: red with the bug...
    with pytest.raises(ReproError):
        with _inflated_weighted_lane():
            check_stream(
                list(failure.minimal_stream), _SMALL.capacity, k=8
            )
    # ...green without it
    check_stream(list(failure.minimal_stream), _SMALL.capacity, k=8)
    rendered = failure.render()
    assert "reproducer" in rendered
    assert failure.seed_key in rendered
    assert str(len(failure.minimal_stream)) in rendered


def test_injected_bug_failure_counts_in_metrics():
    registry = MetricsRegistry()
    report = fuzz(
        1,
        seed=_DOCUMENTED_SEED,
        params=_SMALL,
        patch=_inflated_weighted_lane,
        metrics=registry,
    )
    assert not report.ok
    snapshot = registry.snapshot()
    assert snapshot["counters"]["scenario.fuzz.failures"] == len(
        report.failures
    )


def test_audit_catches_direct_guarantee_breaks_too():
    """check_stream's per-lane audit (not just the differential): feed a
    broken per-element lane and expect an AuditError mentioning it."""

    @contextlib.contextmanager
    def undercount_reference():
        original = SpaceSaving.process_bulk

        def skipping(self, element, count):
            # drop every 10th occurrence of element 0: breaks the
            # upper-bound guarantee in whichever lane runs first
            if element == 0 and self.processed % 10 == 9:
                return
            return original(self, element, count)

        SpaceSaving.process_bulk = skipping
        try:
            yield
        finally:
            SpaceSaving.process_bulk = original

    stream = [0] * 60 + list(range(1, 30))
    with pytest.raises(AuditError):
        with undercount_reference():
            check_stream(stream, capacity=16, k=8)
