"""The adversary suite against the sketch-backed engines.

Sketch backends answer from Count-Min table reads, so the auditor
switches contracts: overestimates must stay inside each entry's widened
ε·N bound and estimates must never dip below truth — while Space
Saving's recall guarantee is reported, not enforced (the candidate
identifier is best-effort by design).  The eviction-poison adversary,
built to poison Space Saving's eviction order, is the load-bearing row:
it must not translate into a bound violation on the sketch path.
"""

import pytest

from repro.scenarios import (
    BACKENDS,
    SKETCH_BACKENDS,
    ScenarioParams,
    run_scenario,
)
from repro.scenarios.audit import score_sketch_accuracy
from repro.schedcheck.auditor import exact_counts

PARAMS = ScenarioParams(length=6000, alphabet=600, capacity=64, seed=7)


def test_sketch_backends_are_registered():
    for name in SKETCH_BACKENDS:
        assert name in BACKENDS


@pytest.mark.parametrize("backend", SKETCH_BACKENDS)
def test_eviction_poison_scored_on_cm_bounds(backend):
    run = run_scenario("eviction-poison", backend, PARAMS, k=10,
                       workers=2)
    accuracy = run.accuracy
    assert accuracy.ok
    assert accuracy.max_underestimate == 0     # CM never under-estimates
    assert accuracy.max_overestimate <= accuracy.error_bound
    assert accuracy.processed == run.elements


@pytest.mark.parametrize("backend", SKETCH_BACKENDS)
def test_drift_scenario_stays_within_bounds(backend):
    run = run_scenario("skew-drift", backend, PARAMS, k=10, workers=2)
    assert run.accuracy.ok
    assert run.accuracy.max_underestimate == 0


def test_sketch_scoring_flags_underestimates():
    """The sketch lane must still catch a broken (underestimating) table."""
    from repro.core.counters import CounterEntry
    from repro.core.space_saving import SpaceSaving

    truth = {"a": 100, "b": 10}
    lying = SpaceSaving.from_entries(
        8, [CounterEntry("a", 60, 5), CounterEntry("b", 10, 5)], 110
    )
    report = score_sketch_accuracy(lying, truth, k=2)
    assert not report.ok
    assert report.max_underestimate == 40


def test_sketch_scoring_flags_bound_excess():
    from repro.core.counters import CounterEntry
    from repro.core.space_saving import SpaceSaving

    truth = {"a": 10}
    inflated = SpaceSaving.from_entries(
        8, [CounterEntry("a", 30, 5)], 30
    )
    report = score_sketch_accuracy(inflated, truth, k=1)
    assert not report.ok
    assert report.bound_excess > 0


def test_sketch_scoring_does_not_punish_missing_hitters():
    """A heavy hitter absent from the candidate set is not a violation."""
    from repro.core.counters import CounterEntry
    from repro.core.space_saving import SpaceSaving

    truth = {"a": 100, "b": 90}
    partial = SpaceSaving.from_entries(
        8, [CounterEntry("a", 100, 0)], 190
    )
    report = score_sketch_accuracy(partial, truth, k=2)
    assert report.ok
    assert report.recall_at_k == 0.5
