"""Unit tests for the accuracy metrics."""

import pytest

from repro.analysis.accuracy import (
    average_relative_error,
    frequent_accuracy,
    set_accuracy,
    top_k_accuracy,
)
from repro.core.counters import CounterEntry, ExactCounter
from repro.errors import ConfigurationError


def test_set_accuracy_basics():
    acc = set_accuracy(["a", "b", "x"], ["a", "b", "c"])
    assert acc.precision == pytest.approx(2 / 3)
    assert acc.recall == pytest.approx(2 / 3)
    assert acc.returned == 3
    assert acc.expected == 3
    assert 0 < acc.f1 < 1


def test_set_accuracy_empty_sets():
    acc = set_accuracy([], [])
    assert acc.precision == 1.0
    assert acc.recall == 1.0
    assert acc.f1 == 1.0


def test_set_accuracy_disjoint():
    acc = set_accuracy(["a"], ["b"])
    assert acc.precision == 0.0
    assert acc.recall == 0.0
    assert acc.f1 == 0.0


def _exact():
    counter = ExactCounter()
    counter.process_many(["a"] * 60 + ["b"] * 30 + ["c"] * 10)
    return counter


def test_frequent_accuracy():
    exact = _exact()
    answer = [CounterEntry("a", 60), CounterEntry("c", 10)]
    acc = frequent_accuracy(answer, exact, phi=0.25)
    # truth above 25 elements: {a, b}; answered: {a, c}
    assert acc.precision == pytest.approx(0.5)
    assert acc.recall == pytest.approx(0.5)


def test_frequent_accuracy_validates_phi():
    with pytest.raises(ConfigurationError):
        frequent_accuracy([], _exact(), phi=0.0)


def test_top_k_accuracy():
    exact = _exact()
    answer = [CounterEntry("a", 61), CounterEntry("c", 12)]
    acc = top_k_accuracy(answer, exact, k=2)
    assert acc.precision == pytest.approx(0.5)
    assert acc.recall == pytest.approx(0.5)
    with pytest.raises(ConfigurationError):
        top_k_accuracy(answer, exact, k=0)


def test_average_relative_error_over_answers():
    exact = _exact()
    answer = [CounterEntry("a", 66), CounterEntry("b", 30)]
    # errors: 6/60 = 0.1 and 0
    assert average_relative_error(answer, exact) == pytest.approx(0.05)


def test_average_relative_error_over_top():
    exact = _exact()
    answer = [CounterEntry("a", 60)]
    # top-2 truth: a (exact), b (missing -> estimate 0 -> error 1.0)
    assert average_relative_error(answer, exact, top=2) == pytest.approx(0.5)


def test_average_relative_error_empty():
    assert average_relative_error([], _exact()) == 0.0
