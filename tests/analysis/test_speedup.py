"""Unit tests for speedup computation."""

import pytest

from repro.analysis.speedup import SpeedupSeries, scaling_efficiency, speedup_table
from repro.errors import ConfigurationError


def _series():
    return SpeedupSeries(
        label="alpha=2.0",
        threads=[1, 2, 4],
        times=[1.0, 0.6, 0.4],
        baseline_threads=1,
    )


def test_speedups_relative_to_baseline():
    series = _series()
    assert series.baseline_time == 1.0
    assert series.speedups() == pytest.approx([1.0, 1.0 / 0.6, 2.5])


def test_baseline_can_be_any_entry():
    series = SpeedupSeries("x", [4, 8], [2.0, 1.0], baseline_threads=4)
    assert series.speedups() == [1.0, 2.0]


def test_as_rows():
    rows = _series().as_rows()
    assert rows[0] == {"threads": 1, "seconds": 1.0, "speedup": 1.0}
    assert rows[2]["speedup"] == pytest.approx(2.5)


def test_validation():
    with pytest.raises(ConfigurationError):
        SpeedupSeries("x", [1, 2], [1.0], baseline_threads=1)
    with pytest.raises(ConfigurationError):
        SpeedupSeries("x", [1, 2], [1.0, 2.0], baseline_threads=4)


def test_speedup_table():
    table = speedup_table([_series()])
    assert list(table) == ["alpha=2.0"]
    assert table["alpha=2.0"][-1] == pytest.approx(2.5)


def test_scaling_efficiency():
    series = _series()
    eff = scaling_efficiency(series)
    assert eff[0] == pytest.approx(1.0)
    assert eff[2] == pytest.approx(2.5 / 4)
