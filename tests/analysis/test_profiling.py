"""Unit tests for the profiling category mapping."""

import pytest

from repro.analysis.profiling import (
    as_percentages,
    independent_profile,
    shared_profile,
)


def test_independent_profile_folds_and_normalizes():
    profile = independent_profile(
        {"counting": 0.6, "merge": 0.3, "whatever": 0.1}
    )
    assert profile["Counting"] == pytest.approx(0.6)
    assert profile["Merge"] == pytest.approx(0.3)
    assert profile["Rest"] == pytest.approx(0.1)
    assert sum(profile.values()) == pytest.approx(1.0)


def test_shared_profile_categories():
    profile = shared_profile(
        {
            "hash": 0.4,
            "structure": 0.2,
            "minmax": 0.1,
            "bucket": 0.2,
            "other": 0.1,
        }
    )
    assert profile["Hash Opns"] == pytest.approx(0.4)
    assert profile["Structure Opns"] == pytest.approx(0.2)
    assert profile["Min-Max Locks"] == pytest.approx(0.1)
    assert profile["Bucket Locks"] == pytest.approx(0.2)
    assert profile["Rest"] == pytest.approx(0.1)


def test_unnormalized_input_is_normalized():
    profile = independent_profile({"counting": 2.0, "merge": 2.0})
    assert profile["Counting"] == pytest.approx(0.5)


def test_empty_breakdown():
    profile = shared_profile({})
    assert all(value == 0.0 for value in profile.values())


def test_as_percentages():
    assert as_percentages({"A": 0.5, "B": 0.25}) == {"A": 50.0, "B": 25.0}
