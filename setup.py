"""Legacy setup shim.

The execution environment has an older setuptools without the ``wheel``
package, so PEP 517 editable installs fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` work offline.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
